"""Tests for the typed flow-pair API (repro.pipeline.pairs)."""

import pickle

import pytest

from repro.errors import ConfigurationError, DataError
from repro.pipeline import FlowPairKey, PairDataRegistry, as_pair_key


class TestFlowPairKey:
    def test_fields_and_reversed(self):
        key = FlowPairKey("F18", "F1")
        assert key.first == "F18"
        assert key.second == "F1"
        assert key.reversed() == FlowPairKey("F1", "F18")
        assert key.reversed().reversed() == key

    def test_tuple_equality_and_hash(self):
        key = FlowPairKey("F18", "F1")
        assert key == ("F18", "F1")
        assert ("F18", "F1") == key
        assert key != ("F1", "F18")
        assert hash(key) == hash(("F18", "F1"))

    def test_interchangeable_as_dict_key(self):
        store = {FlowPairKey("A", "B"): 1}
        assert ("A", "B") in store
        assert store[("A", "B")] == 1
        tuple_store = {("A", "B"): 2}
        assert FlowPairKey("A", "B") in tuple_store
        assert tuple_store[FlowPairKey("A", "B")] == 2

    def test_tuple_protocol(self):
        key = FlowPairKey("A", "B")
        first, second = key
        assert (first, second) == ("A", "B")
        assert key[0] == "A" and key[1] == "B"
        assert key[::-1] == ("B", "A")
        assert len(key) == 2
        assert key.as_tuple() == ("A", "B")

    def test_str_parse_roundtrip(self):
        key = FlowPairKey("F18", "F1")
        assert str(key) == "F18|F1"
        assert FlowPairKey.parse(str(key)) == key
        assert FlowPairKey.parse("  F18 | F1 ") == key
        assert key.label() == "(F18 | F1)"

    @pytest.mark.parametrize("bad", ["F18", "A|B|C", "|B", "A|", 42])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            FlowPairKey.parse(bad)

    @pytest.mark.parametrize("first,second", [("", "B"), ("A", ""), (1, "B")])
    def test_rejects_non_string_names(self, first, second):
        with pytest.raises(ConfigurationError):
            FlowPairKey(first, second)

    def test_frozen(self):
        key = FlowPairKey("A", "B")
        with pytest.raises(AttributeError):
            key.first = "C"

    def test_picklable(self):
        key = FlowPairKey("F18", "F1")
        assert pickle.loads(pickle.dumps(key)) == key


class TestAsPairKey:
    def test_key_passthrough(self):
        key = FlowPairKey("A", "B")
        assert as_pair_key(key) is key

    def test_string_parsed(self):
        assert as_pair_key("A|B") == FlowPairKey("A", "B")

    def test_tuple_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="plain tuples"):
            key = as_pair_key(("A", "B"))
        assert key == FlowPairKey("A", "B")

    def test_tuple_warning_suppressible(self, recwarn):
        as_pair_key(("A", "B"), warn_on_tuple=False)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    @pytest.mark.parametrize("bad", [42, ("A",), ("A", "B", "C"), None])
    def test_rejects_non_pairs(self, bad):
        with pytest.raises(ConfigurationError):
            as_pair_key(bad)


class TestPairDataRegistry:
    def _dataset(self):
        import numpy as np

        from repro.flows.dataset import FlowPairDataset

        return FlowPairDataset(
            np.zeros((4, 2)), np.tile(np.eye(2), (2, 1)), name="toy"
        )

    def test_coerce_dict_and_lookup_styles(self):
        ds = self._dataset()
        with pytest.warns(DeprecationWarning):
            registry = PairDataRegistry.coerce({("A", "B"): ds})
        assert len(registry) == 1
        assert FlowPairKey("A", "B") in registry
        assert ("A", "B") in registry
        assert "A|B" in registry
        assert registry[FlowPairKey("A", "B")] is ds
        assert registry[("A", "B")] is ds

    def test_coerce_registry_passthrough(self):
        registry = PairDataRegistry({FlowPairKey("A", "B"): self._dataset()})
        assert PairDataRegistry.coerce(registry) is registry

    def test_coerce_none_rejected(self):
        with pytest.raises(DataError):
            PairDataRegistry.coerce(None)

    def test_flow_names(self):
        registry = PairDataRegistry(
            {
                FlowPairKey("A", "B"): self._dataset(),
                FlowPairKey("B", "C"): self._dataset(),
            }
        )
        assert registry.flow_names() == {"A", "B", "C"}

    def test_contains_garbage_is_false(self):
        registry = PairDataRegistry()
        assert 42 not in registry
