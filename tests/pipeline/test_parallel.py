"""Parallel pair-training: determinism, failure isolation, events.

These tests exercise GANSec.train_models through every executor on a
multi-pair synthetic factory.  The key property is the acceptance
criterion of the runtime redesign: with a fixed seed, parallel
schedules produce generator/discriminator weights bitwise-identical to
the serial path.
"""

import numpy as np
import pytest

from repro.errors import PairTrainingError
from repro.flows.dataset import FlowPairDataset
from repro.graph.builder import generate
from repro.graph.generators import random_factory
from repro.pipeline import CGANConfig, FlowPairKey, GANSec, GANSecConfig
from repro.runtime import EventBus

SEED = 123
ITERATIONS = 30


def _factory_and_pairs(n_pairs):
    arch = random_factory(4, seed=SEED)
    observed = {
        f.name
        for f in arch.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    result = generate(arch, observed)
    keys = [FlowPairKey(*fp.names) for fp in result.trainable_pairs[:n_pairs]]
    assert len(keys) == n_pairs
    return arch, keys


def _dataset(rng, n=32, feature_dim=4):
    features = rng.uniform(size=(n, feature_dim))
    conditions = np.tile(np.eye(2), (n // 2, 1))
    return FlowPairDataset(features, conditions, name="synthetic")


@pytest.fixture(scope="module")
def workload():
    arch, keys = _factory_and_pairs(3)
    rng = np.random.default_rng(7)
    data = {key: _dataset(rng) for key in keys}
    return arch, data


def _config():
    return GANSecConfig(cgan=CGANConfig(iterations=ITERATIONS), seed=SEED)


def _all_weights(pipe):
    out = {}
    for key, model in pipe.models.items():
        nets = {}
        nets.update({f"g_{k}": v for k, v in model.cgan.generator.get_weights().items()})
        nets.update({f"d_{k}": v for k, v in model.cgan.discriminator.get_weights().items()})
        out[str(key)] = nets
    return out


class TestDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, workload, executor):
        arch, data = workload
        serial = GANSec(arch, _config())
        serial.train_models(data, workers=1, executor="serial")
        parallel = GANSec(arch, _config())
        parallel.train_models(data, workers=2, executor=executor)

        serial_w, parallel_w = _all_weights(serial), _all_weights(parallel)
        assert serial_w.keys() == parallel_w.keys()
        for pair in serial_w:
            for name in serial_w[pair]:
                np.testing.assert_array_equal(
                    serial_w[pair][name], parallel_w[pair][name]
                )

    def test_result_independent_of_pair_order(self, workload):
        arch, data = workload
        forward = GANSec(arch, _config())
        forward.train_models(data)
        backward = GANSec(arch, _config())
        backward.train_models(data, pairs=list(reversed(list(data))))

        forward_w, backward_w = _all_weights(forward), _all_weights(backward)
        assert forward_w.keys() == backward_w.keys()
        for pair in forward_w:
            for name in forward_w[pair]:
                np.testing.assert_array_equal(
                    forward_w[pair][name], backward_w[pair][name]
                )


class TestFailureIsolation:
    def _poisoned_workload(self):
        arch, keys = _factory_and_pairs(3)
        rng = np.random.default_rng(7)
        data = {key: _dataset(rng) for key in keys}
        # One condition with a single row cannot be stratified-split:
        # this pair passes up-front validation but fails inside its job.
        bad_features = rng.uniform(size=(3, 4))
        bad_conditions = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        data[keys[1]] = FlowPairDataset(
            bad_features, bad_conditions, name="poisoned"
        )
        return arch, data, keys

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_one_bad_pair_does_not_abort_batch(self, executor):
        arch, data, keys = self._poisoned_workload()
        pipe = GANSec(arch, _config())
        with pytest.raises(PairTrainingError) as excinfo:
            pipe.train_models(data, workers=2, executor=executor)

        error = excinfo.value
        assert list(error.failures) == [keys[1]]
        assert "not enough to split" in error.failures[keys[1]]
        assert sorted(error.completed, key=str) == sorted(
            [keys[0], keys[2]], key=str
        )
        # The good pairs were trained and kept.
        assert keys[0] in pipe.models
        assert keys[2] in pipe.models
        assert keys[1] not in pipe.models
        assert pipe.models[keys[0]].cgan.is_trained

    def test_failed_batch_still_emits_events(self):
        arch, data, keys = self._poisoned_workload()
        pipe = GANSec(arch, _config())
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        with pytest.raises(PairTrainingError):
            pipe.train_models(data, bus=bus)
        kinds = [e.kind for e in events]
        assert kinds[0] == "TrainingStarted"
        assert kinds[-1] == "TrainingFinished"
        assert kinds.count("PairTrained") == 2
        assert kinds.count("PairFailed") == 1


class TestEventStream:
    def test_epoch_progress_replayed_from_processes(self, workload):
        arch, data = workload
        config = GANSecConfig(
            cgan=CGANConfig(iterations=ITERATIONS), seed=SEED, progress_every=10
        )
        pipe = GANSec(arch, config)
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        pipe.train_models(data, workers=2, executor="process", bus=bus)
        progress = [e for e in events if e.kind == "EpochProgress"]
        # 30 iterations, cadence 10 -> 3 events per pair.
        assert len(progress) == 3 * len(data)
        assert {e.pair for e in progress} == {str(k) for k in data}
        assert not bus.handler_errors

    def test_started_event_reports_executor(self, workload):
        arch, data = workload
        pipe = GANSec(arch, _config())
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        pipe.train_models(data, workers=2, executor="thread", bus=bus)
        started = events[0]
        assert started.kind == "TrainingStarted"
        assert started.executor == "thread"
        assert started.workers == 2
        assert started.total_pairs == len(data)
