"""Parallel security analysis through GANSec: determinism, shim, events.

The analysis counterpart of test_parallel.py: GANSec.analyze fans out
per-(pair, condition) jobs over the executors, and with a fixed
pipeline seed every schedule must produce likelihood tables
bitwise-identical to the serial path — even though reports were already
cached, regenerated, or computed with a different worker count.
"""

import warnings

import numpy as np
import pytest

from repro.flows.dataset import FlowPairDataset
from repro.graph.builder import generate
from repro.graph.generators import random_factory
from repro.pipeline import CGANConfig, FlowPairKey, GANSec, GANSecConfig
from repro.runtime import EventBus

SEED = 123
ITERATIONS = 30


def _factory_and_pairs(n_pairs):
    arch = random_factory(4, seed=SEED)
    observed = {
        f.name
        for f in arch.flows.values()
        if f.is_signal or (f.is_energy and not f.intentional)
    }
    result = generate(arch, observed)
    keys = [FlowPairKey(*fp.names) for fp in result.trainable_pairs[:n_pairs]]
    assert len(keys) == n_pairs
    return arch, keys


def _dataset(rng, n=32, feature_dim=4):
    features = rng.uniform(size=(n, feature_dim))
    conditions = np.tile(np.eye(2), (n // 2, 1))
    return FlowPairDataset(features, conditions, name="synthetic")


def _config(**kwargs):
    return GANSecConfig(
        cgan=CGANConfig(iterations=ITERATIONS), seed=SEED, **kwargs
    )


@pytest.fixture(scope="module")
def trained_pipe():
    arch, keys = _factory_and_pairs(2)
    rng = np.random.default_rng(7)
    data = {key: _dataset(rng) for key in keys}
    pipe = GANSec(arch, _config())
    pipe.train_models(data)
    return pipe, keys


def _tables(reports):
    return {
        str(key): (r.likelihood.avg_correct, r.likelihood.avg_incorrect)
        for key, r in reports.items()
    }


class TestAnalyzeDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, trained_pipe, executor):
        pipe, _keys = trained_pipe
        serial = _tables(pipe.analyze(workers=1, executor="serial"))
        parallel = _tables(pipe.analyze(workers=2, executor=executor))
        assert serial.keys() == parallel.keys()
        for pair in serial:
            np.testing.assert_array_equal(serial[pair][0], parallel[pair][0])
            np.testing.assert_array_equal(serial[pair][1], parallel[pair][1])

    def test_config_worker_count_does_not_change_numbers(self, trained_pipe):
        pipe, _keys = trained_pipe
        base = _tables(pipe.analyze())
        pipe.config.analysis_workers = 2
        try:
            multi = _tables(pipe.analyze())
        finally:
            pipe.config.analysis_workers = 1
        for pair in base:
            np.testing.assert_array_equal(base[pair][0], multi[pair][0])

    def test_chunk_size_does_not_change_numbers(self, trained_pipe):
        pipe, _keys = trained_pipe
        base = _tables(pipe.analyze())
        chunked = _tables(pipe.analyze(chunk_size=3))
        for pair in base:
            np.testing.assert_array_equal(base[pair][0], chunked[pair][0])
            np.testing.assert_array_equal(base[pair][1], chunked[pair][1])

    def test_reports_cached_on_models(self, trained_pipe):
        pipe, keys = trained_pipe
        reports = pipe.analyze()
        for key in keys:
            assert pipe.models[key].report is reports[key]


class TestTupleShim:
    def test_tuple_pair_warns_in_analyze(self, trained_pipe):
        pipe, keys = trained_pipe
        key = keys[0]
        with pytest.warns(DeprecationWarning, match="FlowPairKey"):
            reports = pipe.analyze((key.first, key.second))
        assert set(reports) == {key}

    def test_flowpairkey_does_not_warn(self, trained_pipe):
        pipe, keys = trained_pipe
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            reports = pipe.analyze(keys[0])
        assert set(reports) == {keys[0]}

    def test_tuple_and_key_give_identical_report(self, trained_pipe):
        pipe, keys = trained_pipe
        key = keys[0]
        with pytest.warns(DeprecationWarning):
            via_tuple = pipe.analyze((key.first, key.second))[key]
        via_key = pipe.analyze(key)[key]
        np.testing.assert_array_equal(
            via_tuple.likelihood.avg_correct, via_key.likelihood.avg_correct
        )


class TestAnalysisEvents:
    def test_event_stream_through_gansec(self, trained_pipe):
        pipe, keys = trained_pipe
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        pipe.analyze(workers=2, executor="thread", bus=bus)
        kinds = [e.kind for e in events]
        assert kinds[0] == "AnalysisStarted"
        assert kinds[-1] == "AnalysisCompleted"
        # 2 pairs x 2 conditions.
        assert kinds.count("ConditionScored") == 4
        assert events[0].total_pairs == 2
        assert events[0].total_conditions == 4
        assert not bus.handler_errors

    def test_scored_events_name_the_pairs(self, trained_pipe):
        pipe, keys = trained_pipe
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        pipe.analyze(bus=bus)
        scored = [e for e in events if e.kind == "ConditionScored"]
        assert {e.pair for e in scored} == {str(k) for k in keys}

    def test_console_and_jsonl_reporters_accept_events(
        self, trained_pipe, tmp_path, capsys
    ):
        from repro.runtime.reporters import (
            ConsoleProgressReporter,
            JsonlTraceWriter,
        )

        pipe, _keys = trained_pipe
        bus = EventBus()
        writer = JsonlTraceWriter(tmp_path / "trace.jsonl")
        bus.subscribe(ConsoleProgressReporter().handle)
        bus.subscribe(writer.handle)
        pipe.analyze(bus=bus)
        writer.close()
        assert not bus.handler_errors
        err = capsys.readouterr().err
        assert "analysis done" in err
        lines = (tmp_path / "trace.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1 + 4 + 1  # started + scored + completed


class TestSampleCacheReuse:
    def test_repeated_analyze_hits_cache(self, trained_pipe):
        pipe, _keys = trained_pipe
        pipe._sample_cache.clear()
        pipe.analyze()
        misses = pipe._sample_cache.stats()["misses"]
        before_hits = pipe._sample_cache.stats()["hits"]
        pipe.analyze()
        stats = pipe._sample_cache.stats()
        assert stats["hits"] >= before_hits + 4  # 2 pairs x 2 conditions
        assert stats["misses"] == misses
