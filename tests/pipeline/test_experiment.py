"""Tests for repro.pipeline.experiment."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.flows.io import load_dataset
from repro.gan.serialization import load_cgan
from repro.gan.history import TrainingHistory
from repro.pipeline.experiment import (
    ExperimentConfig,
    run_experiment,
)


class TestConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.emission_flow == "F18"

    def test_rejects_unknown_emission(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(emission_flow="F99")

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(name="")

    def test_from_json(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"name": "x", "seed": 7, "iterations": 10}))
        cfg = ExperimentConfig.from_json(path)
        assert cfg.name == "x"
        assert cfg.seed == 7


class TestRun:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("exp")
        cfg = ExperimentConfig(
            name="tiny",
            seed=3,
            n_moves_per_axis=8,
            n_bins=40,
            iterations=150,
        )
        return run_experiment(cfg, out)

    def test_all_artifacts_written(self, result):
        for artifact in (
            "config.json",
            "dataset.npz",
            "graph.dot",
            "model/cgan.json",
            "history.csv",
            "report.txt",
            "summary.json",
        ):
            assert (result.directory / artifact).exists(), artifact

    def test_summary_contents(self, result):
        summary = json.loads((result.directory / "summary.json").read_text())
        assert summary["experiment"] == "tiny"
        assert summary["iterations"] == 150
        assert 0.0 <= summary["attack_accuracy"] <= 1.0
        assert "leakage" in summary["verdict"]

    def test_artifacts_reloadable(self, result):
        dataset = load_dataset(result.directory / "dataset.npz")
        assert dataset.feature_dim == 40
        cgan = load_cgan(result.directory / "model")
        assert cgan.trained_iterations == 150
        hist = TrainingHistory.from_csv(result.directory / "history.csv")
        assert len(hist) == 150

    def test_report_text(self, result):
        text = result.report_text()
        assert "VERDICT" in text
        assert "Cond3 (Z)" in text

    def test_graph_dot_valid(self, result):
        dot = (result.directory / "graph.dot").read_text()
        assert dot.startswith("digraph")
        assert '"C4"' in dot
