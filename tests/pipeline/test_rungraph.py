"""Tests for repro.pipeline.rungraph (the staged, resumable run graph)."""

import pytest

from repro.artifacts.manifest import RunManifest
from repro.artifacts.store import ArtifactStore
from repro.errors import ConfigurationError
from repro.pipeline.rungraph import RunGraph, Stage, stage_fingerprint
from repro.runtime.events import (
    EventBus,
    StageCompleted,
    StageSkipped,
    StageStarted,
)


def _collect(bus):
    events = []
    bus.subscribe(events.append)
    return events


def _names(events, kind):
    return [e.stage for e in events if isinstance(e, kind)]


def make_stages(counts, store_payloads=None):
    """Two-stage chain a -> b; each writes one artifact and bumps a counter."""
    payloads = store_payloads or {"a": b"alpha", "b": b"beta"}

    def run_a(ctx):
        counts["a"] += 1
        return {"out_a": ctx.store.put_bytes("a.bin", payloads["a"])}, {"n": 1}

    def run_b(ctx):
        counts["b"] += 1
        return {"out_b": ctx.store.put_bytes("b.bin", payloads["b"])}, {}

    return [
        Stage("a", run=run_a, config_slice={"k": 1}, outputs=("out_a",)),
        Stage("b", run=run_b, deps=("a",), config_slice={"k": 2}, outputs=("out_b",)),
    ]


class Ctx:
    def __init__(self, store):
        self.store = store


@pytest.fixture()
def rundir(tmp_path):
    return tmp_path / "run"


def build(rundir, stages, *, bus=None, resume=True):
    store = ArtifactStore(rundir)
    manifest = RunManifest.load(rundir)
    graph = RunGraph(stages, store, manifest, bus=bus, resume=resume)
    return graph, Ctx(store)


class TestExecution:
    def test_runs_in_order_and_records(self, rundir):
        counts = {"a": 0, "b": 0}
        bus = EventBus()
        events = _collect(bus)
        graph, ctx = build(rundir, make_stages(counts), bus=bus)
        outcomes = graph.execute(ctx)

        assert counts == {"a": 1, "b": 1}
        assert [o.status for o in outcomes.values()] == ["completed", "completed"]
        assert _names(events, StageStarted) == ["a", "b"]
        assert _names(events, StageCompleted) == ["a", "b"]
        loaded = RunManifest.load(rundir)
        assert set(loaded.names()) == {"a", "b"}

    def test_warm_rerun_skips_everything(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)

        bus = EventBus()
        events = _collect(bus)
        graph2, ctx2 = build(rundir, make_stages(counts), bus=bus)
        outcomes = graph2.execute(ctx2)

        assert counts == {"a": 1, "b": 1}
        assert all(o.status == "skipped" for o in outcomes.values())
        assert _names(events, StageSkipped) == ["a", "b"]
        assert _names(events, StageStarted) == []

    def test_resume_false_reruns_everything(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)
        graph2, ctx2 = build(rundir, make_stages(counts), resume=False)
        graph2.execute(ctx2)
        assert counts == {"a": 2, "b": 2}

    def test_missing_declared_output_is_an_error(self, rundir):
        stage = Stage("a", run=lambda ctx: ({}, {}), outputs=("out_a",))
        graph, ctx = build(rundir, [stage])
        with pytest.raises(ConfigurationError, match="out_a"):
            graph.execute(ctx)


class TestInvalidation:
    def test_config_change_reruns_stage_and_downstream(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)

        changed = make_stages(counts)
        changed[0].config_slice = {"k": 99}
        graph2, ctx2 = build(rundir, changed)
        outcomes = graph2.execute(ctx2)
        # a re-runs for its new config; b re-runs because its input
        # fingerprint changed (cascade), even though b's config did not.
        assert counts == {"a": 2, "b": 2}
        assert all(o.executed for o in outcomes.values())

    def test_downstream_cascade_even_with_identical_bytes(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)
        # Force a to re-run; it regenerates byte-identical output, but b
        # must still re-run: "a executed" is the invalidation signal,
        # not byte equality.
        manifest = RunManifest.load(rundir)
        manifest.remove("a")
        manifest.save()
        graph2, ctx2 = build(rundir, make_stages(counts))
        graph2.execute(ctx2)
        assert counts == {"a": 2, "b": 2}

    def test_deleted_output_reruns_stage(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)
        (rundir / "a.bin").unlink()
        graph2, ctx2 = build(rundir, make_stages(counts))
        graph2.execute(ctx2)
        assert counts["a"] == 2

    def test_tampered_output_reruns_stage(self, rundir):
        counts = {"a": 0, "b": 0}
        graph, ctx = build(rundir, make_stages(counts))
        graph.execute(ctx)
        (rundir / "b.bin").write_bytes(b"evil")
        bus = EventBus()
        events = _collect(bus)
        graph2, ctx2 = build(rundir, make_stages(counts), bus=bus)
        graph2.execute(ctx2)
        # a untouched and verified -> skipped; b detected as tampered.
        assert counts == {"a": 1, "b": 2}
        assert _names(events, StageSkipped) == ["a"]
        assert _names(events, StageStarted) == ["b"]


class TestEphemeral:
    def test_no_store_runs_everything_with_events(self, tmp_path):
        bus = EventBus()
        events = _collect(bus)
        ran = []

        def make_run(name):
            def run(ctx):
                ran.append(name)
                return {}, {}

            return run

        stages = [
            Stage("x", run=make_run("x")),
            Stage("y", run=make_run("y"), deps=("x",)),
        ]
        graph = RunGraph(stages, None, None, bus=bus, resume=False)
        graph.execute(object())
        graph.execute(object())  # nothing persists, nothing skips
        assert ran == ["x", "y", "x", "y"]
        assert _names(events, StageSkipped) == []


class TestGraphValidation:
    def test_unknown_dep_rejected(self):
        with pytest.raises(ConfigurationError, match="nope"):
            RunGraph([Stage("a", run=None, deps=("nope",))], None, None)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            RunGraph(
                [Stage("a", run=None), Stage("a", run=None)], None, None
            )

    def test_group_without_runner_rejected(self):
        with pytest.raises(ConfigurationError, match="group"):
            RunGraph([Stage("a", run=None, group="g")], None, None)


class TestGroups:
    def _grouped(self, rundir, runner, *, bus=None):
        store = ArtifactStore(rundir)
        manifest = RunManifest.load(rundir)
        stages = [
            Stage("t1", run=None, group="g", outputs=("o",), config_slice={"p": 1}),
            Stage("t2", run=None, group="g", outputs=("o",), config_slice={"p": 2}),
        ]
        graph = RunGraph(
            stages, store, manifest, bus=bus, group_runners={"g": runner}
        )
        return graph, Ctx(store)

    def test_batch_runs_together_and_records_each(self, rundir):
        batches = []

        def runner(group, batch, ctx):
            batches.append([stage.name for stage, _fp in batch])
            results = {
                stage.name: (
                    {"o": ctx.store.put_bytes(f"{stage.name}.bin", b"x")},
                    {},
                )
                for stage, _fp in batch
            }
            return results, None

        graph, ctx = self._grouped(rundir, runner)
        outcomes = graph.execute(ctx)
        assert batches == [["t1", "t2"]]
        assert all(o.executed for o in outcomes.values())
        # Second run: both members skip individually, runner never called.
        graph2, ctx2 = self._grouped(rundir, runner)
        outcomes2 = graph2.execute(ctx2)
        assert batches == [["t1", "t2"]]
        assert all(o.status == "skipped" for o in outcomes2.values())

    def test_partial_failure_records_successes_then_raises(self, rundir):
        def runner(group, batch, ctx):
            results = {}
            for stage, _fp in batch:
                if stage.name == "t1":
                    results[stage.name] = (
                        {"o": ctx.store.put_bytes("t1.bin", b"x")},
                        {},
                    )
            return results, RuntimeError("t2 exploded")

        graph, ctx = self._grouped(rundir, runner)
        with pytest.raises(RuntimeError, match="t2 exploded"):
            graph.execute(ctx)
        manifest = RunManifest.load(rundir)
        assert "t1" in manifest
        assert "t2" not in manifest


class TestFingerprint:
    def test_sensitive_to_all_parts(self):
        base = stage_fingerprint("s", {"k": 1}, {"d": {"fingerprint": "f", "outputs": {}}})
        assert stage_fingerprint("s2", {"k": 1}, {"d": {"fingerprint": "f", "outputs": {}}}) != base
        assert stage_fingerprint("s", {"k": 2}, {"d": {"fingerprint": "f", "outputs": {}}}) != base
        assert stage_fingerprint("s", {"k": 1}, {"d": {"fingerprint": "g", "outputs": {}}}) != base
        assert stage_fingerprint(
            "s", {"k": 1}, {"d": {"fingerprint": "f", "outputs": {"o": "sha256:x"}}}
        ) != base

    def test_key_order_canonicalized(self):
        assert stage_fingerprint("s", {"a": 1, "b": 2}, {}) == stage_fingerprint(
            "s", {"b": 2, "a": 1}, {}
        )
