"""Tests for repro.pipeline.config."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import AnalysisConfig, CGANConfig, GANSecConfig


class TestCGANConfig:
    def test_defaults_valid(self):
        cfg = CGANConfig()
        assert cfg.iterations > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"noise_dim": 0},
            {"iterations": 0},
            {"batch_size": 0},
            {"k_disc": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            CGANConfig(**kwargs)


class TestAnalysisConfig:
    def test_defaults_are_paper_values(self):
        cfg = AnalysisConfig()
        assert cfg.h == 0.2
        assert cfg.g_size == 200

    @pytest.mark.parametrize(
        "kwargs",
        [{"h": 0.0}, {"g_size": 0}, {"test_fraction": 0.0}, {"test_fraction": 1.0}],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(**kwargs)


class TestTopLevel:
    def test_composes(self):
        cfg = GANSecConfig(seed=42)
        assert cfg.cgan.iterations == 2000
        assert cfg.analysis.h == 0.2
