"""Tests for repro.graph.reachability."""

import networkx as nx
import pytest

from repro.errors import ArchitectureError
from repro.graph.reachability import (
    assert_dag,
    dfs_reachable,
    is_reachable,
    remove_feedback_edges,
)


def chain(*nodes):
    g = nx.DiGraph()
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b)
    return g


class TestReachability:
    def test_chain(self):
        g = chain("a", "b", "c")
        assert dfs_reachable(g, "a") == {"a", "b", "c"}
        assert dfs_reachable(g, "c") == {"c"}

    def test_is_reachable(self):
        g = chain("a", "b", "c")
        assert is_reachable(g, "a", "c")
        assert not is_reachable(g, "c", "a")

    def test_unknown_node(self):
        g = chain("a", "b")
        with pytest.raises(ArchitectureError):
            dfs_reachable(g, "zz")
        with pytest.raises(ArchitectureError):
            is_reachable(g, "a", "zz")

    def test_branching(self):
        g = nx.DiGraph([("a", "b"), ("a", "c"), ("c", "d")])
        assert dfs_reachable(g, "a") == {"a", "b", "c", "d"}


class TestFeedbackRemoval:
    def test_acyclic_unchanged(self):
        g = chain("a", "b", "c")
        dag, removed = remove_feedback_edges(g)
        assert removed == []
        assert set(dag.edges) == set(g.edges)

    def test_simple_cycle_broken(self):
        g = nx.DiGraph([("a", "b"), ("b", "a")])
        dag, removed = remove_feedback_edges(g)
        assert len(removed) == 1
        assert nx.is_directed_acyclic_graph(dag)

    def test_input_not_modified(self):
        g = nx.DiGraph([("a", "b"), ("b", "a")])
        remove_feedback_edges(g)
        assert g.number_of_edges() == 2

    def test_multiple_cycles(self):
        g = nx.DiGraph(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "b")]
        )
        dag, removed = remove_feedback_edges(g)
        assert nx.is_directed_acyclic_graph(dag)
        assert len(removed) >= 2

    def test_deterministic(self):
        g = nx.DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        _, removed1 = remove_feedback_edges(g)
        _, removed2 = remove_feedback_edges(g)
        assert removed1 == removed2


class TestAssertDag:
    def test_passes_on_dag(self):
        assert_dag(chain("x", "y"))

    def test_raises_on_cycle(self):
        with pytest.raises(ArchitectureError, match="cycle"):
            assert_dag(nx.DiGraph([("a", "b"), ("b", "a")]))
