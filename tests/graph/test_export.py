"""Tests for repro.graph.export."""

from repro.graph.builder import build_graph
from repro.graph.export import adjacency_listing, flow_listing, to_dot
from repro.manufacturing.architecture import printer_architecture


def printer_graph():
    return build_graph(printer_architecture())


class TestDot:
    def test_contains_all_nodes_and_flows(self):
        dot = to_dot(printer_graph())
        for node in ("C1", "C4", "P9"):
            assert f'"{node}"' in dot
        assert 'label="F1"' in dot

    def test_domain_shapes(self):
        dot = to_dot(printer_graph())
        assert "shape=box" in dot      # Cyber components.
        assert "shape=ellipse" in dot  # Physical components.

    def test_energy_flows_dashed(self):
        dot = to_dot(printer_graph())
        assert "style=dashed" in dot
        assert "style=solid" in dot

    def test_valid_structure(self):
        dot = to_dot(printer_graph())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")


class TestListings:
    def test_adjacency_covers_nodes(self):
        text = adjacency_listing(printer_graph())
        lines = text.splitlines()
        assert len(lines) == 13
        assert any(line.startswith("C4:") for line in lines)

    def test_flow_listing_marks_unintentional(self):
        text = flow_listing(printer_graph())
        assert "UNINTENTIONAL" in text
        assert "F14" in text
        assert "acoustic" in text
