"""Tests for repro.graph.builder (Algorithm 1)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArchitectureError
from repro.flows.base import FlowKind
from repro.graph.architecture import CPPSArchitecture
from repro.graph.builder import (
    FLOW_ATTR,
    build_graph,
    extract_flow_pairs,
    generate,
    prune_pairs_by_data,
)
from repro.graph.components import SubSystem, cyber, physical
from repro.graph.reachability import is_reachable, remove_feedback_edges
from repro.manufacturing.architecture import (
    GCODE_FLOW,
    monitored_flow_names,
    printer_architecture,
)


def chain_arch():
    """C1 -F1-> P1 -F2-> P2, plus a disconnected-direction flow P2 -F3-> C2."""
    arch = CPPSArchitecture("chain")
    arch.add_subsystem(
        SubSystem("s", [cyber("C1"), cyber("C2"), physical("P1"), physical("P2")])
    )
    arch.add_signal_flow("F1", "C1", "P1")
    arch.add_energy_flow("F2", "P1", "P2")
    arch.add_energy_flow("F3", "P2", "C2")
    return arch


class TestBuildGraph:
    def test_nodes_and_edges(self):
        g = build_graph(chain_arch())
        assert set(g.nodes) == {"C1", "C2", "P1", "P2"}
        assert g.number_of_edges() == 3

    def test_edge_carries_flow_spec(self):
        g = build_graph(chain_arch())
        flow = g["C1"]["P1"]["F1"][FLOW_ATTR]
        assert flow.kind is FlowKind.SIGNAL

    def test_node_attributes(self):
        g = build_graph(chain_arch())
        assert g.nodes["C1"]["domain"] == "cyber"
        assert g.nodes["P1"]["subsystem"] == "s"

    def test_parallel_edges_supported(self):
        arch = chain_arch()
        arch.add_energy_flow("F4", "C1", "P1")  # Parallel to F1.
        g = build_graph(arch)
        assert g.number_of_edges("C1", "P1") == 2

    def test_invalid_architecture_rejected(self):
        with pytest.raises(ArchitectureError):
            build_graph(CPPSArchitecture("empty"))


class TestExtractPairs:
    def test_chain_pairs(self):
        g = build_graph(chain_arch())
        pairs = extract_flow_pairs(g)
        names = {fp.names for fp in pairs}
        # F1 (tail C1) reaches F2's head P2 and F3's head C2.
        assert ("F1", "F2") in names
        assert ("F1", "F3") in names
        # F3's tail P2 reaches nothing beyond C2; F1's head is unreachable.
        assert ("F3", "F1") not in names

    def test_no_self_pairs(self):
        g = build_graph(chain_arch())
        for fp in extract_flow_pairs(g):
            assert fp.first.name != fp.second.name

    def test_every_pair_satisfies_reachability(self):
        g = build_graph(printer_architecture())
        simple = nx.DiGraph()
        simple.add_nodes_from(g.nodes)
        simple.add_edges_from((u, v) for u, v, _k in g.edges(keys=True))
        dag, _ = remove_feedback_edges(simple)
        for fp in extract_flow_pairs(g):
            assert is_reachable(dag, fp.first.source, fp.second.target), fp


class TestPrune:
    def test_prune_by_data(self):
        g = build_graph(chain_arch())
        pairs = extract_flow_pairs(g)
        kept = prune_pairs_by_data(pairs, {"F1", "F2"})
        assert all(
            fp.first.name in {"F1", "F2"} and fp.second.name in {"F1", "F2"}
            for fp in kept
        )
        assert kept  # (F1, F2) survives.

    def test_prune_empty_data(self):
        g = build_graph(chain_arch())
        assert prune_pairs_by_data(extract_flow_pairs(g), set()) == []


class TestGenerate:
    def test_printer_case_study(self):
        res = generate(printer_architecture(), monitored_flow_names())
        assert res.graph.number_of_nodes() == 13
        assert res.graph.number_of_edges() == 21
        assert res.removed_edges == []  # Printer graph is already a DAG.
        # The G-code -> each monitored emission pairs must be trainable.
        trainable = {fp.names for fp in res.trainable_pairs}
        for emission in ("F14", "F15", "F16", "F17", "F18"):
            assert (GCODE_FLOW, emission) in trainable

    def test_cross_domain_selection(self):
        res = generate(printer_architecture(), monitored_flow_names())
        cross = res.cross_domain_pairs()
        assert all(fp.is_cross_domain for fp in cross)
        assert len(cross) == 5  # F1 paired with each acoustic emission.

    def test_pair_lookup(self):
        res = generate(printer_architecture(), monitored_flow_names())
        fp = res.pair(GCODE_FLOW, "F14")
        assert fp.names == (GCODE_FLOW, "F14")
        with pytest.raises(ArchitectureError):
            res.pair("F14", "nope")

    def test_summary_mentions_counts(self):
        res = generate(printer_architecture(), monitored_flow_names())
        text = res.summary()
        assert "13 nodes" in text
        assert "trainable" in text

    def test_cyclic_architecture_handled(self):
        arch = CPPSArchitecture("cyclic")
        arch.add_subsystem(SubSystem("s", [cyber("A"), cyber("B")]))
        arch.add_signal_flow("F1", "A", "B")
        arch.add_signal_flow("F2", "B", "A")
        res = generate(arch, {"F1", "F2"})
        assert len(res.removed_edges) == 1
        assert nx.is_directed_acyclic_graph(res.dag)


class TestPropertyBased:
    @given(
        n_nodes=st.integers(min_value=2, max_value=7),
        edges=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graph_pairs_valid(self, n_nodes, edges):
        """On random architectures, Algorithm 1 must (a) never pair a flow
        with itself, (b) only produce pairs whose reachability holds in
        the cycle-broken graph."""
        # Normalize edges first so we only declare connected components
        # (validate() rightly rejects isolated nodes).
        seen = set()
        for a, b in edges:
            a, b = a % n_nodes, b % n_nodes
            if a != b and (a, b) not in seen:
                seen.add((a, b))
        if not seen:
            return
        used = sorted({n for e in seen for n in e})
        arch = CPPSArchitecture("rand")
        arch.add_subsystem(SubSystem("s", [cyber(f"N{i}") for i in used]))
        for i, (a, b) in enumerate(sorted(seen)):
            arch.add_signal_flow(f"F{i}", f"N{a}", f"N{b}")
        res = generate(arch, set(arch.flows))
        for fp in res.candidate_pairs:
            assert fp.first.name != fp.second.name
            assert is_reachable(res.dag, fp.first.source, fp.second.target)
        # FP_T is a subset of FP_F.
        cand = {fp.names for fp in res.candidate_pairs}
        assert all(fp.names in cand for fp in res.trainable_pairs)
