"""Tests for repro.graph.architecture."""

import pytest

from repro.errors import ArchitectureError
from repro.flows.base import EnergyForm
from repro.graph.architecture import CPPSArchitecture
from repro.graph.components import SubSystem, cyber, physical


def minimal_arch():
    arch = CPPSArchitecture("test")
    arch.add_subsystem(SubSystem("s1", [cyber("C1"), physical("P1")]))
    arch.add_signal_flow("F1", "C1", "P1")
    return arch


class TestConstruction:
    def test_duplicate_subsystem(self):
        arch = minimal_arch()
        with pytest.raises(ArchitectureError, match="duplicate sub-system"):
            arch.add_subsystem(SubSystem("s1"))

    def test_component_name_clash_across_subsystems(self):
        arch = minimal_arch()
        with pytest.raises(ArchitectureError, match="already exist"):
            arch.add_subsystem(SubSystem("s2", [cyber("C1")]))

    def test_flow_unknown_endpoint(self):
        arch = minimal_arch()
        with pytest.raises(ArchitectureError, match="unknown component"):
            arch.add_signal_flow("F2", "C1", "MISSING")

    def test_duplicate_flow_name(self):
        arch = minimal_arch()
        with pytest.raises(ArchitectureError, match="duplicate flow"):
            arch.add_signal_flow("F1", "P1", "C1")


class TestQueries:
    def test_component_lookup(self):
        arch = minimal_arch()
        assert arch.component("C1").is_cyber
        with pytest.raises(ArchitectureError):
            arch.component("nope")

    def test_subsystem_of(self):
        arch = minimal_arch()
        assert arch.subsystem_of("P1").name == "s1"

    def test_flow_kinds(self):
        arch = minimal_arch()
        arch.add_energy_flow("F2", "P1", "C1", form=EnergyForm.THERMAL)
        assert [f.name for f in arch.signal_flows()] == ["F1"]
        assert [f.name for f in arch.energy_flows()] == ["F2"]

    def test_cross_subsystem_flows(self):
        arch = minimal_arch()
        arch.add_subsystem(SubSystem("s2", [physical("P9", external=True)]))
        arch.add_energy_flow("F3", "P1", "P9", intentional=False)
        cross = arch.cross_subsystem_flows()
        assert [f.name for f in cross] == ["F3"]


class TestValidate:
    def test_valid(self):
        minimal_arch().validate()

    def test_no_subsystems(self):
        with pytest.raises(ArchitectureError, match="no sub-systems"):
            CPPSArchitecture("x").validate()

    def test_no_flows(self):
        arch = CPPSArchitecture("x")
        arch.add_subsystem(SubSystem("s", [cyber("C1"), cyber("C2")]))
        with pytest.raises(ArchitectureError, match="no flows"):
            arch.validate()

    def test_isolated_component(self):
        arch = minimal_arch()
        arch.add_subsystem(SubSystem("s2", [physical("P7")]))
        with pytest.raises(ArchitectureError, match="disconnected"):
            arch.validate()
