"""Tests for repro.graph.generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.graph.builder import generate
from repro.graph.generators import random_factory


class TestRandomFactory:
    def test_validates(self):
        random_factory(3, seed=0).validate()

    def test_component_count(self):
        arch = random_factory(3, cyber_per_subsystem=2,
                              physical_per_subsystem=3, seed=0)
        # 3 * (2 + 3) + ENV.
        assert len(arch.component_names()) == 16

    def test_deterministic(self):
        a = random_factory(4, seed=9)
        b = random_factory(4, seed=9)
        assert set(a.flows) == set(b.flows)
        assert {(f.source, f.target) for f in a.flows.values()} == {
            (f.source, f.target) for f in b.flows.values()
        }

    def test_algorithm1_runs(self):
        arch = random_factory(4, seed=1)
        result = generate(arch, set(arch.flows))
        assert result.graph.number_of_nodes() == len(arch.component_names())
        assert result.trainable_pairs

    def test_has_unintentional_emissions(self):
        arch = random_factory(3, emission_probability=1.0, seed=2)
        emissions = [
            f for f in arch.flows.values()
            if f.is_energy and not f.intentional
        ]
        assert len(emissions) == 9  # Every physical component emits.

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            random_factory(0)
        with pytest.raises(ConfigurationError):
            random_factory(2, cyber_per_subsystem=0)
        with pytest.raises(ConfigurationError):
            random_factory(2, emission_probability=1.5)

    @given(
        n=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
        emit=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_always_valid_and_analyzable(self, n, seed, emit):
        arch = random_factory(n, emission_probability=emit, seed=seed)
        arch.validate()  # Never raises: generator guarantees connectivity.
        result = generate(arch, set(arch.flows))
        assert result.candidate_pairs  # A layered factory always has pairs.
