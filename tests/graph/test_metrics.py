"""Tests for repro.graph.metrics."""

import pytest

from repro.errors import ArchitectureError
from repro.graph.builder import build_graph
from repro.graph.metrics import (
    attack_surface,
    cross_domain_cut,
    emission_exposure,
    monitoring_coverage,
    path_flows,
)
from repro.manufacturing.architecture import printer_architecture


@pytest.fixture(scope="module")
def graph():
    return build_graph(printer_architecture())


class TestAttackSurface:
    def test_external_gcode_reaches_motors(self, graph):
        surface = attack_surface(graph, "C4")
        # Malicious G-code can influence controller, drivers, all motors,
        # heaters, frame, and the environment.
        assert {"C1", "C2", "P2", "P3", "P4", "P5", "P8", "P9"} <= surface

    def test_entry_excluded(self, graph):
        assert "C4" not in attack_surface(graph, "C4")

    def test_leaf_has_empty_surface(self, graph):
        assert attack_surface(graph, "P9") == set()

    def test_unknown_node(self, graph):
        with pytest.raises(ArchitectureError):
            attack_surface(graph, "X99")


class TestEmissionExposure:
    def test_motors_exposed_acoustically(self, graph):
        exposure = emission_exposure(graph)
        # X motor leaks through its own emission and through the frame's.
        assert "F14" in exposure["P2"]
        assert "F18" in exposure["P2"]

    def test_controller_exposed_transitively(self, graph):
        exposure = emission_exposure(graph)
        # C1 drives the motors, so its activity reaches the emissions.
        assert len(exposure["C1"]) > 0

    def test_environment_not_exposed(self, graph):
        exposure = emission_exposure(graph)
        # P9 is a sink: nothing downstream of it emits.
        # (Its own emissions list contains flows whose source it reaches,
        # which is none since it has no outgoing edges.)
        assert exposure["P9"] == []


class TestPathFlows:
    def test_c1_to_p2_path(self, graph):
        flows = path_flows(graph, "C1", "P2")
        names = {f.name for f in flows}
        assert names == {"F2", "F4"}  # C1 -> C2 -> P2.

    def test_no_path(self, graph):
        assert path_flows(graph, "P9", "C1") == []

    def test_unknown_node(self, graph):
        with pytest.raises(ArchitectureError):
            path_flows(graph, "C1", "nope")


class TestMonitoringCoverage:
    def test_paper_question_c1_to_p5(self, graph):
        # "Can F9 [an emission to the environment] be used to monitor any
        # attacks in the integrity of the flow path from C1 to P5?"
        report = monitoring_coverage(graph, "C1", "P5", ["F17"])
        # Every component on C1 -> C2 -> P5 can perturb P5's emission.
        assert report.coverage == 1.0
        assert report.blind_nodes == []

    def test_wrong_monitor_leaves_blind_spots(self, graph):
        # Monitoring only the hotend's thermal emission cannot see the
        # motion path at all.
        report = monitoring_coverage(graph, "C1", "P2", ["F19"])
        assert report.coverage < 1.0
        assert "P2" in report.blind_nodes

    def test_unknown_monitor_flow(self, graph):
        with pytest.raises(ArchitectureError, match="unknown monitored"):
            monitoring_coverage(graph, "C1", "P2", ["F99"])

    def test_no_path_raises(self, graph):
        with pytest.raises(ArchitectureError, match="no directed path"):
            monitoring_coverage(graph, "P9", "C1", ["F14"])

    def test_summary_text(self, graph):
        report = monitoring_coverage(graph, "C1", "P5", ["F17"])
        assert "C1->P5" in report.summary()


class TestCrossDomainCut:
    def test_printer_cut(self, graph):
        cut = {f.name for f in cross_domain_cut(graph)}
        # Driver->motor electrical flows cross cyber->physical; the PSU
        # crosses physical->cyber.
        assert {"F4", "F5", "F6", "F7", "F8", "F9", "F21"} == cut
