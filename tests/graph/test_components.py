"""Tests for repro.graph.components."""

import pytest

from repro.errors import ArchitectureError
from repro.graph.components import Component, Domain, SubSystem, cyber, physical


class TestComponent:
    def test_constructors(self):
        c = cyber("C1", "controller")
        p = physical("P1", "motor")
        assert c.is_cyber and not c.is_physical
        assert p.is_physical and not p.is_cyber

    def test_external_flag(self):
        env = physical("P9", "environment", external=True)
        assert env.external

    def test_rejects_empty_name(self):
        with pytest.raises(ArchitectureError):
            Component("", Domain.CYBER)

    def test_str(self):
        assert "C1" in str(cyber("C1", "ctrl"))


class TestSubSystem:
    def test_add_and_iterate(self):
        sub = SubSystem("s")
        sub.add(cyber("C1")).add(physical("P1"))
        assert len(sub) == 2
        assert {c.name for c in sub} == {"C1", "P1"}

    def test_domain_partitions(self):
        sub = SubSystem("s", [cyber("C1"), physical("P1"), physical("P2")])
        assert len(sub.cyber_components) == 1
        assert len(sub.physical_components) == 2

    def test_duplicate_in_constructor(self):
        with pytest.raises(ArchitectureError, match="duplicate"):
            SubSystem("s", [cyber("C1"), cyber("C1")])

    def test_duplicate_in_add(self):
        sub = SubSystem("s", [cyber("C1")])
        with pytest.raises(ArchitectureError):
            sub.add(physical("C1"))

    def test_rejects_empty_name(self):
        with pytest.raises(ArchitectureError):
            SubSystem("")
