"""Tests for repro.security.parzen."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, DataError, NotFittedError, ShapeError
from repro.security.parzen import (
    ParzenWindow,
    resolve_chunk_size,
    silverman_bandwidth,
)


def naive_log_density(kernels, x, h):
    """O(n·m) reference: direct per-point log of the kernel mixture.

    No log-sum-exp, no blocking — the textbook formula the vectorized
    ``score_batch`` must reproduce.
    """
    kernels = np.atleast_2d(np.asarray(kernels, dtype=float).T).T
    x = np.atleast_2d(np.asarray(x, dtype=float).T).T
    n, d = kernels.shape
    out = np.empty(x.shape[0])
    norm = n * (h * np.sqrt(2 * np.pi)) ** d
    with np.errstate(divide="ignore"):
        for i, point in enumerate(x):
            sq = np.sum((point - kernels) ** 2, axis=1) / (h * h)
            out[i] = np.log(np.sum(np.exp(-0.5 * sq)) / norm)
    return out


class TestFit:
    def test_rejects_bad_h(self):
        with pytest.raises(ConfigurationError):
            ParzenWindow(0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ParzenWindow(0.2).score_samples([0.5])

    def test_1d_samples(self):
        pw = ParzenWindow(0.2).fit([0.0, 1.0, 2.0])
        assert pw.n_kernels == 3
        assert pw.dim == 1

    def test_2d_samples(self):
        pw = ParzenWindow(0.2).fit(np.zeros((5, 3)))
        assert pw.dim == 3

    def test_dim_mismatch_raises(self):
        pw = ParzenWindow(0.2).fit(np.zeros((5, 3)))
        with pytest.raises(ShapeError):
            pw.score_samples(np.zeros((2, 2)))


class TestDensity:
    def test_single_kernel_is_gaussian(self):
        h = 0.3
        pw = ParzenWindow(h).fit([0.0])
        x = np.array([0.0, h, 2 * h])
        expected = np.exp(-0.5 * (x / h) ** 2) / (h * np.sqrt(2 * np.pi))
        np.testing.assert_allclose(pw.density(x), expected, rtol=1e-10)

    def test_density_integrates_to_one(self):
        pw = ParzenWindow(0.25).fit([0.2, 0.5, 0.9])
        grid = np.linspace(-3, 4, 4001)
        integral = np.trapezoid(pw.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-4)

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5), min_size=1, max_size=8
        ),
        st.floats(min_value=0.05, max_value=1.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_density_normalization_property(self, samples, h):
        pw = ParzenWindow(h).fit(samples)
        grid = np.linspace(min(samples) - 6 * h, max(samples) + 6 * h, 3001)
        integral = np.trapezoid(pw.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_score_is_log_density(self):
        pw = ParzenWindow(0.4).fit([1.0, 2.0])
        x = np.array([1.5])
        assert pw.score(x) == pytest.approx(float(np.log(pw.density(x)[0])))

    def test_likelihood_scaling(self):
        # Paper's Line 10: Like = exp(LogLike) * h.
        h = 0.2
        pw = ParzenWindow(h).fit([0.5])
        like = pw.likelihood(np.array([0.5]))
        assert like[0] == pytest.approx(h / (h * np.sqrt(2 * np.pi)))

    def test_far_points_no_underflow_to_nan(self):
        pw = ParzenWindow(0.1).fit([0.0])
        scores = pw.score_samples(np.array([100.0]))
        assert np.isfinite(scores[0]) or scores[0] == -np.inf

    def test_density_higher_near_data(self):
        pw = ParzenWindow(0.2).fit([0.3, 0.35, 0.4])
        assert pw.density([0.35])[0] > pw.density([0.9])[0]


class TestBatchedScoring:
    """score_batch: blocked evaluation, chunk invariance, stability."""

    def test_chunk_size_bitwise_invariant(self):
        rng = np.random.default_rng(3)
        pw = ParzenWindow(0.3).fit(rng.normal(size=(40, 3)))
        x = rng.normal(size=(101, 3))
        reference = pw.score_batch(x, chunk_size=101)
        for chunk in (1, 2, 7, 50, 100, 1000):
            chunked = pw.score_batch(x, chunk_size=chunk)
            assert np.array_equal(chunked, reference), f"chunk={chunk}"

    def test_memory_budget_path_matches_explicit_chunk(self):
        rng = np.random.default_rng(4)
        pw = ParzenWindow(0.5).fit(rng.normal(size=(30, 2)))
        x = rng.normal(size=(64, 2))
        auto = pw.score_batch(x, memory_budget_mb=0.001)  # forces tiny chunks
        assert np.array_equal(auto, pw.score_batch(x, chunk_size=64))

    @given(
        kernels=st.lists(
            st.floats(min_value=-10, max_value=10), min_size=1, max_size=12
        ),
        points=st.lists(
            st.floats(min_value=-10, max_value=10), min_size=1, max_size=12
        ),
        h=st.floats(min_value=0.05, max_value=2.0),
        chunk=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_naive_reference(self, kernels, points, h, chunk):
        pw = ParzenWindow(h).fit(kernels)
        got = pw.score_batch(np.array(points), chunk_size=chunk)
        want = naive_log_density(kernels, points, h)
        # Where the naive exp() underflows (densities below the smallest
        # normal float64, log < ~-708), the naive sum is computed from
        # subnormals and loses precision, so the strict tolerance only
        # applies in the normal range; log-sum-exp keeps the true (very
        # negative) value — only require that the stable path is at
        # least as far in the tail as float64 allows.
        normal = np.isfinite(want) & (want > np.log(np.finfo(float).tiny))
        np.testing.assert_allclose(
            got[normal], want[normal], atol=1e-10, rtol=1e-10
        )
        assert np.all(got[~np.isfinite(want)] < np.log(np.finfo(float).tiny) + 1)
        subnormal = np.isfinite(want) & ~normal
        np.testing.assert_allclose(got[subnormal], want[subnormal], rtol=1e-3)

    @given(
        shift=st.floats(min_value=-50, max_value=50),
        h=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, shift, h):
        kernels = np.array([0.0, 0.7, 1.9, -2.2])
        x = np.array([-1.0, 0.3, 2.5])
        base = ParzenWindow(h).fit(kernels).score_batch(x)
        moved = ParzenWindow(h).fit(kernels + shift).score_batch(x + shift)
        np.testing.assert_allclose(moved, base, atol=1e-9)

    @given(permutation=st.permutations(list(range(6))))
    @settings(max_examples=30, deadline=None)
    def test_kernel_permutation_invariance(self, permutation):
        rng = np.random.default_rng(11)
        kernels = rng.normal(size=(6, 2))
        x = rng.normal(size=(9, 2))
        base = ParzenWindow(0.4).fit(kernels).score_batch(x)
        shuffled = ParzenWindow(0.4).fit(kernels[permutation]).score_batch(x)
        np.testing.assert_allclose(shuffled, base, atol=1e-12)

    @given(
        points=st.lists(
            st.floats(min_value=-1e308, max_value=1e308), min_size=1, max_size=6
        ),
        h=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_nan(self, points, h):
        # Log-sum-exp stability: any finite input, however extreme,
        # yields a real log density or exactly -inf — never nan.
        pw = ParzenWindow(h).fit([0.0, 1.0])
        scores = pw.score_batch(np.array(points))
        assert not np.isnan(scores).any()

    def test_far_point_is_exact_neg_inf(self):
        # Regression: points whose exponent overflows used to become
        # nan through the -inf - -inf max subtraction.
        pw = ParzenWindow(0.1).fit([0.0])
        scores = pw.score_batch(np.array([1e200, -1e308, 0.0]))
        assert scores[0] == -np.inf
        assert scores[1] == -np.inf
        assert np.isfinite(scores[2])

    def test_density_of_far_point_is_zero(self):
        pw = ParzenWindow(0.2).fit([0.0, 1.0])
        assert pw.density(np.array([1e300]))[0] == 0.0

    def test_score_batch_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ParzenWindow(0.2).score_batch([0.5])

    def test_score_batch_shape_mismatch_raises(self):
        pw = ParzenWindow(0.2).fit(np.zeros((4, 3)))
        with pytest.raises(ShapeError):
            pw.score_batch(np.zeros((2, 5)))


class TestResolveChunkSize:
    def test_explicit_wins(self):
        assert resolve_chunk_size(1000, 10, chunk_size=7) == 7

    def test_explicit_invalid_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_chunk_size(10, 1, chunk_size=0)

    def test_bad_budget_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_chunk_size(10, 1, memory_budget_mb=0.0)

    def test_budget_scales_chunk(self):
        small = resolve_chunk_size(500, 4, memory_budget_mb=1.0)
        large = resolve_chunk_size(500, 4, memory_budget_mb=64.0)
        # Proportional up to integer truncation of each division.
        assert 64 * small <= large <= 64 * (small + 1)

    def test_at_least_one_row(self):
        assert resolve_chunk_size(10**9, 10**3, memory_budget_mb=0.001) == 1


class TestSample:
    def test_shape(self):
        pw = ParzenWindow(0.1).fit(np.zeros((10, 2)))
        out = pw.sample(20, seed=0)
        assert out.shape == (20, 2)

    def test_distribution_near_kernels(self):
        pw = ParzenWindow(0.05).fit([0.0, 10.0])
        draws = pw.sample(1000, seed=0).ravel()
        near_any = (np.abs(draws) < 1) | (np.abs(draws - 10) < 1)
        assert near_any.mean() > 0.99

    def test_rejects_bad_count(self):
        pw = ParzenWindow(0.1).fit([0.0])
        with pytest.raises(ConfigurationError):
            pw.sample(0)


class TestSilverman:
    def test_scales_with_spread(self):
        rng = np.random.default_rng(0)
        tight = silverman_bandwidth(rng.normal(0, 0.1, 200))
        wide = silverman_bandwidth(rng.normal(0, 10.0, 200))
        assert wide > 20 * tight

    def test_requires_two_samples(self):
        with pytest.raises(DataError):
            silverman_bandwidth([1.0])

    def test_degenerate_data(self):
        bw = silverman_bandwidth(np.ones(50))
        assert bw > 0
