"""Tests for repro.security.parzen."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, DataError, NotFittedError, ShapeError
from repro.security.parzen import ParzenWindow, silverman_bandwidth


class TestFit:
    def test_rejects_bad_h(self):
        with pytest.raises(ConfigurationError):
            ParzenWindow(0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ParzenWindow(0.2).score_samples([0.5])

    def test_1d_samples(self):
        pw = ParzenWindow(0.2).fit([0.0, 1.0, 2.0])
        assert pw.n_kernels == 3
        assert pw.dim == 1

    def test_2d_samples(self):
        pw = ParzenWindow(0.2).fit(np.zeros((5, 3)))
        assert pw.dim == 3

    def test_dim_mismatch_raises(self):
        pw = ParzenWindow(0.2).fit(np.zeros((5, 3)))
        with pytest.raises(ShapeError):
            pw.score_samples(np.zeros((2, 2)))


class TestDensity:
    def test_single_kernel_is_gaussian(self):
        h = 0.3
        pw = ParzenWindow(h).fit([0.0])
        x = np.array([0.0, h, 2 * h])
        expected = np.exp(-0.5 * (x / h) ** 2) / (h * np.sqrt(2 * np.pi))
        np.testing.assert_allclose(pw.density(x), expected, rtol=1e-10)

    def test_density_integrates_to_one(self):
        pw = ParzenWindow(0.25).fit([0.2, 0.5, 0.9])
        grid = np.linspace(-3, 4, 4001)
        integral = np.trapezoid(pw.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-4)

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5), min_size=1, max_size=8
        ),
        st.floats(min_value=0.05, max_value=1.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_density_normalization_property(self, samples, h):
        pw = ParzenWindow(h).fit(samples)
        grid = np.linspace(min(samples) - 6 * h, max(samples) + 6 * h, 3001)
        integral = np.trapezoid(pw.density(grid), grid)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_score_is_log_density(self):
        pw = ParzenWindow(0.4).fit([1.0, 2.0])
        x = np.array([1.5])
        assert pw.score(x) == pytest.approx(float(np.log(pw.density(x)[0])))

    def test_likelihood_scaling(self):
        # Paper's Line 10: Like = exp(LogLike) * h.
        h = 0.2
        pw = ParzenWindow(h).fit([0.5])
        like = pw.likelihood(np.array([0.5]))
        assert like[0] == pytest.approx(h / (h * np.sqrt(2 * np.pi)))

    def test_far_points_no_underflow_to_nan(self):
        pw = ParzenWindow(0.1).fit([0.0])
        scores = pw.score_samples(np.array([100.0]))
        assert np.isfinite(scores[0]) or scores[0] == -np.inf

    def test_density_higher_near_data(self):
        pw = ParzenWindow(0.2).fit([0.3, 0.35, 0.4])
        assert pw.density([0.35])[0] > pw.density([0.9])[0]


class TestSample:
    def test_shape(self):
        pw = ParzenWindow(0.1).fit(np.zeros((10, 2)))
        out = pw.sample(20, seed=0)
        assert out.shape == (20, 2)

    def test_distribution_near_kernels(self):
        pw = ParzenWindow(0.05).fit([0.0, 10.0])
        draws = pw.sample(1000, seed=0).ravel()
        near_any = (np.abs(draws) < 1) | (np.abs(draws - 10) < 1)
        assert near_any.mean() > 0.99

    def test_rejects_bad_count(self):
        pw = ParzenWindow(0.1).fit([0.0])
        with pytest.raises(ConfigurationError):
            pw.sample(0)


class TestSilverman:
    def test_scales_with_spread(self):
        rng = np.random.default_rng(0)
        tight = silverman_bandwidth(rng.normal(0, 0.1, 200))
        wide = silverman_bandwidth(rng.normal(0, 10.0, 200))
        assert wide > 20 * tight

    def test_requires_two_samples(self):
        with pytest.raises(DataError):
            silverman_bandwidth([1.0])

    def test_degenerate_data(self):
        bw = silverman_bandwidth(np.ones(50))
        assert bw > 0
