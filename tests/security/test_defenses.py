"""Tests for repro.security.defenses."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dsp.features import FrequencyFeatureExtractor
from repro.flows.encoding import SingleMotorEncoder
from repro.manufacturing import Printer3D, calibration_suite, single_motor_program
from repro.security.defenses import (
    AcousticMasking,
    CombinedDefense,
    Defense,
    DefenseReport,
    FeedRateDithering,
    record_defended_dataset,
)


def rng():
    return np.random.default_rng(0)


class TestAcousticMasking:
    def test_adds_band_limited_noise(self):
        sr = 12000.0
        silence = np.zeros(int(sr * 0.2))
        defense = AcousticMasking(level=0.5, f_low=500, f_high=1000)
        out = defense.apply_audio(silence, sr, rng())
        assert np.sqrt(np.mean(out**2)) == pytest.approx(0.5, rel=0.05)
        # Energy concentrated in the masking band.
        spectrum = np.abs(np.fft.rfft(out)) ** 2
        freqs = np.fft.rfftfreq(len(out), 1 / sr)
        in_band = spectrum[(freqs >= 500) & (freqs <= 1000)].sum()
        assert in_band / spectrum.sum() > 0.95

    def test_program_untouched(self):
        prog = single_motor_program("X", 3, seed=0)
        defense = AcousticMasking()
        assert defense.apply_program(prog, rng()) is prog

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            AcousticMasking(level=0.0)
        with pytest.raises(ConfigurationError):
            AcousticMasking(f_low=1000, f_high=100)

    def test_empty_audio(self):
        out = AcousticMasking().apply_audio(np.zeros(0), 12000.0, rng())
        assert len(out) == 0


class TestFeedRateDithering:
    def test_feeds_jittered_geometry_kept(self):
        prog = single_motor_program("X", 10, seed=0)
        defended = FeedRateDithering(0.3).apply_program(prog, rng())
        assert len(defended) == len(prog)
        changed = 0
        for a, b in zip(prog, defended):
            assert a.code == b.code
            for axis in ("X", "Y", "Z"):
                assert a.params.get(axis) == b.params.get(axis)
            if a.is_motion and "F" in a.params:
                ratio = b.params["F"] / a.params["F"]
                assert 0.7 <= ratio <= 1.3
                changed += ratio != 1.0
        assert changed > 0

    def test_audio_untouched(self):
        x = rng().normal(size=100)
        out = FeedRateDithering(0.2).apply_audio(x, 12000.0, rng())
        np.testing.assert_array_equal(out, x)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            FeedRateDithering(0.0)
        with pytest.raises(ConfigurationError):
            FeedRateDithering(1.0)


class TestCombinedDefense:
    def test_applies_both(self):
        prog = single_motor_program("X", 5, seed=0)
        combined = CombinedDefense(
            [FeedRateDithering(0.3), AcousticMasking(level=0.3)]
        )
        defended_prog = combined.apply_program(prog, rng())
        feeds_a = [c.params.get("F") for c in prog.motion_commands()]
        feeds_b = [c.params.get("F") for c in defended_prog.motion_commands()]
        assert feeds_a != feeds_b
        silence = np.zeros(1200)
        out = combined.apply_audio(silence, 12000.0, rng())
        assert np.std(out) > 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CombinedDefense([])


class TestRecordDefended:
    def test_dataset_shape_and_blur(self):
        printer = Printer3D(sample_rate=12000.0, seed=1)
        programs = calibration_suite(6, seed=1)
        extractor = FrequencyFeatureExtractor(12000.0, n_bins=30)
        encoder = SingleMotorEncoder()
        baseline = record_defended_dataset(
            printer, programs, extractor, encoder, Defense(), seed=2
        )
        extractor2 = FrequencyFeatureExtractor(12000.0, n_bins=30)
        defended = record_defended_dataset(
            printer,
            programs,
            extractor2,
            encoder,
            AcousticMasking(level=3.0),
            seed=2,
        )
        assert defended.feature_dim == baseline.feature_dim
        assert len(defended.unique_conditions()) == 3


class TestDefenseReport:
    def test_derived_metrics(self):
        report = DefenseReport(
            defense_name="d",
            baseline_accuracy=0.8,
            defended_accuracy=0.5,
            baseline_mi=1.0,
            defended_mi=0.4,
        )
        assert report.accuracy_reduction == pytest.approx(0.3)
        assert report.mi_reduction_bits == pytest.approx(0.6)
        assert "0.800 -> 0.500" in report.summary()
