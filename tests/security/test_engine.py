"""Parallel security-analysis engine: determinism, cache, failures, events.

Mirrors tests/pipeline/test_parallel.py for the Algorithm 3 fan-out:
with a fixed root entropy, every executor must produce likelihood
tables bitwise-identical to the serial path, failures must be isolated
per (pair, condition) job, and the event stream must narrate the run.
"""

import numpy as np
import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    DataError,
)
from repro.runtime import EventBus
from repro.runtime.analysis import (
    ConditionSampleCache,
    analysis_rng,
    condition_tokens,
)
from repro.security.engine import (
    AnalysisTarget,
    run_security_analysis,
    security_analysis,
    security_analysis_h_sweep,
)
from repro.security.parzen import ParzenWindow

ROOT = 20190325


def gaussian_sampler(condition, n, rng):
    """Deterministic, picklable stand-in for a trained generator."""
    center = float(np.dot(np.asarray(condition, dtype=float).ravel(), [0.2, 0.8]))
    return rng.normal(center, 0.05, size=(n, 4))


class ExplodingSampler:
    """Raises for the first condition only; picklable."""

    def __call__(self, condition, n, rng):
        if float(np.asarray(condition).ravel()[0]) == 1.0:
            raise ValueError("synthetic generator failure")
        return np.full((n, 4), 0.5)


def _run(toy_dataset, **kwargs):
    return security_analysis(
        gaussian_sampler,
        toy_dataset,
        h=0.2,
        g_size=50,
        root_entropy=ROOT,
        pair="toy",
        **kwargs,
    )


class TestDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, toy_dataset, executor):
        serial = _run(toy_dataset, workers=1, executor="serial")
        parallel = _run(toy_dataset, workers=2, executor=executor)
        np.testing.assert_array_equal(serial.avg_correct, parallel.avg_correct)
        np.testing.assert_array_equal(
            serial.avg_incorrect, parallel.avg_incorrect
        )

    def test_chunk_size_does_not_change_results(self, toy_dataset):
        base = _run(toy_dataset)
        chunked = _run(toy_dataset, chunk_size=3)
        np.testing.assert_array_equal(base.avg_correct, chunked.avg_correct)
        np.testing.assert_array_equal(base.avg_incorrect, chunked.avg_incorrect)

    def test_matches_manual_per_condition_reference(self, toy_dataset):
        # Recompute one cell by hand: same derived RNG, naive Parzen.
        result = _run(toy_dataset)
        conditions = toy_dataset.unique_conditions()
        for ci, cond in enumerate(conditions):
            rng = analysis_rng(ROOT, "toy", cond)
            generated = gaussian_sampler(cond, 50, rng)
            correct = toy_dataset.mask_for_condition(cond)
            for ft in range(toy_dataset.feature_dim):
                likes = (
                    ParzenWindow(0.2)
                    .fit(generated[:, ft])
                    .likelihood(toy_dataset.features[:, ft])
                )
                assert result.avg_correct[ci, ft] == likes[correct].mean()
                assert result.avg_incorrect[ci, ft] == likes[~correct].mean()

    def test_multi_target_keys_and_shapes(self, toy_dataset):
        targets = [
            AnalysisTarget(key=("A", "B"), sampler=gaussian_sampler,
                           test_set=toy_dataset),
            AnalysisTarget(key=("C", "D"), sampler=gaussian_sampler,
                           test_set=toy_dataset, feature_indices=[0, 2]),
        ]
        results = run_security_analysis(targets, g_size=30, root_entropy=ROOT)
        assert list(results) == [("A", "B"), ("C", "D")]
        assert results[("A", "B")].avg_correct.shape == (2, 4)
        assert results[("C", "D")].avg_correct.shape == (2, 2)

    def test_same_pair_label_same_numbers_across_targets(self, toy_dataset):
        # The RNG derives from (root, label, condition) — identity of the
        # surrounding batch must not matter.
        alone = _run(toy_dataset)
        batch = run_security_analysis(
            [
                AnalysisTarget(key="other", sampler=gaussian_sampler,
                               test_set=toy_dataset, label="other"),
                AnalysisTarget(key="toy", sampler=gaussian_sampler,
                               test_set=toy_dataset, label="toy"),
            ],
            h=0.2,
            g_size=50,
            root_entropy=ROOT,
        )
        np.testing.assert_array_equal(
            alone.avg_correct, batch["toy"].avg_correct
        )


class TestConditionTokens:
    def test_round_trip_exact(self):
        cond = np.array([0.1 + 0.2, 1e-17])  # 0.30000000000000004 etc.
        assert condition_tokens(cond) == condition_tokens(cond.copy())

    def test_distinguishes_close_values(self):
        assert condition_tokens([0.1]) != condition_tokens([0.1 + 1e-16])

    def test_analysis_rng_is_pure(self):
        a = analysis_rng(ROOT, "p", [1.0, 0.0]).normal(size=4)
        b = analysis_rng(ROOT, "p", [1.0, 0.0]).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_analysis_rng_varies_by_identity(self):
        base = analysis_rng(ROOT, "p", [1.0, 0.0]).normal(size=4)
        other_pair = analysis_rng(ROOT, "q", [1.0, 0.0]).normal(size=4)
        other_cond = analysis_rng(ROOT, "p", [0.0, 1.0]).normal(size=4)
        assert not np.array_equal(base, other_pair)
        assert not np.array_equal(base, other_cond)


class TestSampleCache:
    def test_second_run_hits_and_matches(self, toy_dataset):
        cache = ConditionSampleCache()
        first = _run(toy_dataset, cache=cache)
        assert cache.stats() == {"entries": 2, "hits": 0, "misses": 2}
        second = _run(toy_dataset, cache=cache)
        assert cache.stats()["hits"] == 2
        np.testing.assert_array_equal(first.avg_correct, second.avg_correct)
        np.testing.assert_array_equal(first.avg_incorrect, second.avg_incorrect)

    def test_h_sweep_generates_once_per_condition(self, toy_dataset):
        cache = ConditionSampleCache()
        sweep = security_analysis_h_sweep(
            gaussian_sampler,
            toy_dataset,
            h_values=(0.2, 0.5, 1.0),
            g_size=40,
            root_entropy=ROOT,
            pair="toy",
            cache=cache,
        )
        assert set(sweep) == {0.2, 0.5, 1.0}
        # 2 conditions: 2 misses on the first h, hits afterwards.
        assert cache.stats() == {"entries": 2, "hits": 4, "misses": 2}

    def test_cache_hit_is_bitwise_equal_to_regeneration(self, toy_dataset):
        cached = ConditionSampleCache()
        _run(toy_dataset, cache=cached)
        hit = _run(toy_dataset, cache=cached)
        fresh = _run(toy_dataset)  # no cache at all
        np.testing.assert_array_equal(hit.avg_correct, fresh.avg_correct)

    def test_lru_eviction(self):
        cache = ConditionSampleCache(max_entries=2)
        k = ConditionSampleCache.key
        cache.put(k("p", [1.0], 5, 0), np.zeros(5))
        cache.put(k("p", [2.0], 5, 0), np.ones(5))
        cache.get(k("p", [1.0], 5, 0))  # refresh 1.0
        cache.put(k("p", [3.0], 5, 0), np.full(5, 3.0))  # evicts 2.0
        assert cache.get(k("p", [2.0], 5, 0)) is None
        assert cache.get(k("p", [1.0], 5, 0)) is not None
        assert len(cache) == 2

    def test_key_excludes_h(self):
        # Same (pair, condition, n, seed) under different h must collide:
        # the draw does not depend on the Parzen width.
        assert ConditionSampleCache.key("p", [1.0], 5, 0) == ConditionSampleCache.key(
            "p", np.array([1.0]), 5, 0
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ConditionSampleCache(max_entries=0)


class TestFailureIsolation:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_one_bad_condition_reported_after_all_attempted(
        self, toy_dataset, executor
    ):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        with pytest.raises(AnalysisError) as excinfo:
            security_analysis(
                ExplodingSampler(),
                toy_dataset,
                g_size=20,
                root_entropy=ROOT,
                pair="toy",
                workers=2,
                executor=executor,
                bus=bus,
            )
        failures = excinfo.value.failures
        assert list(failures) == [("toy", 0)]
        assert "synthetic generator failure" in failures[("toy", 0)]
        # Every job was attempted and narrated before the raise.
        kinds = [e.kind for e in events]
        assert kinds.count("ConditionScored") == 2
        assert kinds[-1] == "AnalysisCompleted"

    def test_rejects_non_callable_sampler(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_analysis(object(), toy_dataset)


class TestValidation:
    def test_empty_targets(self):
        assert run_security_analysis([]) == {}

    def test_bad_h(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_analysis(gaussian_sampler, toy_dataset, h=0.0)

    def test_bad_g_size(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_analysis(gaussian_sampler, toy_dataset, g_size=0)

    def test_empty_feature_indices(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_analysis(
                gaussian_sampler, toy_dataset, feature_indices=[]
            )

    def test_out_of_range_feature_indices(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_analysis(
                gaussian_sampler, toy_dataset, feature_indices=[99]
            )

    def test_condition_without_test_rows(self, toy_dataset):
        with pytest.raises(DataError):
            security_analysis(
                gaussian_sampler, toy_dataset, conditions=[[0.5, 0.5]]
            )


class TestEvents:
    def test_event_stream_shape(self, toy_dataset):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        _run(toy_dataset, bus=bus, workers=2, executor="thread")
        kinds = [e.kind for e in events]
        assert kinds[0] == "AnalysisStarted"
        assert kinds[-1] == "AnalysisCompleted"
        assert kinds.count("ConditionScored") == 2
        assert not bus.handler_errors

    def test_started_event_fields(self, toy_dataset):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        _run(toy_dataset, bus=bus, workers=2, executor="thread")
        started = events[0]
        assert started.total_pairs == 1
        assert started.total_conditions == 2
        assert started.executor == "thread"
        assert started.workers == 2

    def test_scored_events_replayed_from_processes(self, toy_dataset):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        _run(toy_dataset, bus=bus, workers=2, executor="process")
        scored = [e for e in events if e.kind == "ConditionScored"]
        assert len(scored) == 2
        assert {e.condition for e in scored} == {(1.0, 0.0), (0.0, 1.0)}
        assert all(e.n_features == 4 for e in scored)

    def test_completed_reports_cache_hits(self, toy_dataset):
        cache = ConditionSampleCache()
        _run(toy_dataset, cache=cache)
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        _run(toy_dataset, cache=cache, bus=bus)
        completed = events[-1]
        assert completed.kind == "AnalysisCompleted"
        assert completed.cache_hits == 2
        assert completed.pairs == 1
        assert completed.conditions == 2
