"""Tests for repro.security.baselines."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.baselines import (
    EmpiricalConditionalSampler,
    GaussianConditionalSampler,
    NearestCentroidAttacker,
)
from repro.security.confidentiality import SideChannelAttacker
from repro.security.likelihood import security_likelihood_analysis


def rng():
    return np.random.default_rng(0)


class TestEmpiricalSampler:
    def test_samples_come_from_condition_pool(self, toy_dataset):
        sampler = EmpiricalConditionalSampler(toy_dataset)
        cond = toy_dataset.unique_conditions()[0]
        out = sampler(cond, 50, rng())
        pool = {tuple(r) for r in
                toy_dataset.subset_for_condition(cond).features}
        assert all(tuple(r) in pool for r in out)

    def test_jitter_spreads(self, toy_dataset):
        cond = toy_dataset.unique_conditions()[0]
        clean = EmpiricalConditionalSampler(toy_dataset)(cond, 200, rng())
        jittered = EmpiricalConditionalSampler(toy_dataset, jitter=0.1)(
            cond, 200, rng()
        )
        assert jittered.std() > clean.std()

    def test_rejects_negative_jitter(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            EmpiricalConditionalSampler(toy_dataset, jitter=-0.1)

    def test_unknown_condition(self, toy_dataset):
        sampler = EmpiricalConditionalSampler(toy_dataset)
        with pytest.raises(DataError):
            sampler(np.array([0.5, 0.5]), 5, rng())

    def test_usable_in_algorithm3(self, toy_dataset):
        sampler = EmpiricalConditionalSampler(toy_dataset, jitter=0.02)
        res = security_likelihood_analysis(
            sampler, toy_dataset, h=0.1, g_size=100, seed=0
        )
        # A direct resampler of the data is a (near-)oracle: big margins.
        assert np.all(res.margin().mean(axis=1) > 0.05)


class TestGaussianSampler:
    def test_matches_moments(self, toy_dataset):
        sampler = GaussianConditionalSampler(toy_dataset)
        cond = toy_dataset.unique_conditions()[0]
        real = toy_dataset.subset_for_condition(cond).features
        out = sampler(cond, 2000, rng())
        np.testing.assert_allclose(out.mean(axis=0), real.mean(axis=0), atol=0.02)

    def test_usable_as_attacker_model(self, toy_dataset):
        sampler = GaussianConditionalSampler(toy_dataset)
        attacker = SideChannelAttacker(
            sampler, toy_dataset.unique_conditions(), h=0.1, seed=0
        ).fit()
        assert attacker.evaluate(toy_dataset).accuracy > 0.9

    def test_rejects_bad_min_std(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            GaussianConditionalSampler(toy_dataset, min_std=0.0)


class TestNearestCentroid:
    def test_high_accuracy_on_separable_data(self, toy_dataset):
        attacker = NearestCentroidAttacker(toy_dataset)
        assert attacker.accuracy(toy_dataset) > 0.95

    def test_needs_two_conditions(self):
        ds = FlowPairDataset(np.random.rand(5, 3), np.tile([1.0], (5, 1)))
        with pytest.raises(DataError):
            NearestCentroidAttacker(ds)

    def test_unseen_condition_raises(self, toy_dataset):
        attacker = NearestCentroidAttacker(toy_dataset)
        bad = FlowPairDataset(np.random.rand(3, 4), np.tile([0.5, 0.5], (3, 1)))
        with pytest.raises(DataError):
            attacker.accuracy(bad)

    def test_infer_shape(self, toy_dataset):
        attacker = NearestCentroidAttacker(toy_dataset)
        preds = attacker.infer(toy_dataset.features[:7])
        assert preds.shape == (7,)
