"""Golden regression fixtures for the Algorithm 3 likelihood tables.

``fixture.json`` pins the correct/incorrect likelihood tables of a
fixed-seed mini experiment run through the parallel engine
(:func:`repro.security.engine.security_analysis`).  The regression test
recomputes them and compares against the committed numbers, so any
change to the Parzen scoring, the RNG derivation, or the engine's
assembly is caught even when it is numerically "plausible".

Regenerate (only after an intentional numerical change) with::

    PYTHONPATH=src python -m tests.security.golden --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.flows.dataset import FlowPairDataset
from repro.security.engine import security_analysis

FIXTURE_PATH = Path(__file__).parent / "fixture.json"

#: Everything that pins the experiment. Changing any of these requires
#: regenerating the fixture.
GOLDEN_ROOT_ENTROPY = 20190325
GOLDEN_H_VALUES = (0.2, 0.6)
GOLDEN_G_SIZE = 64
GOLDEN_PAIR = "golden"


def golden_sampler(condition, n, rng):
    """Deterministic generator stand-in: condition selects the mode."""
    center = float(
        np.dot(np.asarray(condition, dtype=float).ravel(), [0.25, 0.75])
    )
    return rng.normal(center, 0.06, size=(n, 3))


def mini_dataset() -> FlowPairDataset:
    """Fixed 2-condition, 3-feature test set (60 rows, seed-pinned)."""
    rng = np.random.default_rng(42)
    half = 30
    f1 = rng.normal(0.25, 0.06, size=(half, 3))
    f2 = rng.normal(0.75, 0.06, size=(half, 3))
    c1 = np.tile([1.0, 0.0], (half, 1))
    c2 = np.tile([0.0, 1.0], (half, 1))
    return FlowPairDataset(
        np.vstack([f1, f2]), np.vstack([c1, c2]), name=GOLDEN_PAIR
    )


def compute_golden() -> dict:
    """Recompute the pinned tables with the engine (serial, no cache)."""
    test_set = mini_dataset()
    tables = {}
    for h in GOLDEN_H_VALUES:
        result = security_analysis(
            golden_sampler,
            test_set,
            h=h,
            g_size=GOLDEN_G_SIZE,
            root_entropy=GOLDEN_ROOT_ENTROPY,
            pair=GOLDEN_PAIR,
        )
        tables[repr(float(h))] = {
            "avg_correct": result.avg_correct.tolist(),
            "avg_incorrect": result.avg_incorrect.tolist(),
        }
    return {
        "root_entropy": GOLDEN_ROOT_ENTROPY,
        "g_size": GOLDEN_G_SIZE,
        "pair": GOLDEN_PAIR,
        "conditions": mini_dataset().unique_conditions().tolist(),
        "tables": tables,
    }


def load_fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


def write_fixture() -> Path:
    FIXTURE_PATH.write_text(json.dumps(compute_golden(), indent=2) + "\n")
    return FIXTURE_PATH
