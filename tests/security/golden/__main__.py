"""Golden-fixture maintenance CLI.

Check the committed fixture against a fresh run::

    PYTHONPATH=src python -m tests.security.golden

Regenerate after an intentional numerical change::

    PYTHONPATH=src python -m tests.security.golden --regen
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from tests.security.golden import (
    FIXTURE_PATH,
    compute_golden,
    load_fixture,
    write_fixture,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tests.security.golden")
    parser.add_argument(
        "--regen",
        action="store_true",
        help="overwrite the committed fixture with freshly computed tables",
    )
    args = parser.parse_args(argv)

    if args.regen:
        path = write_fixture()
        print(f"golden fixture regenerated -> {path}")
        return 0

    if not FIXTURE_PATH.exists():
        print(f"no fixture at {FIXTURE_PATH}; run with --regen to create it")
        return 1
    fresh = compute_golden()
    pinned = load_fixture()
    failures = []
    for h, tables in pinned["tables"].items():
        for name in ("avg_correct", "avg_incorrect"):
            want = np.asarray(tables[name])
            got = np.asarray(fresh["tables"][h][name])
            if not np.allclose(got, want, rtol=1e-9, atol=1e-12):
                failures.append(
                    f"h={h} {name}: max abs diff {np.abs(got - want).max():g}"
                )
    if failures:
        print("golden fixture MISMATCH:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"golden fixture OK ({FIXTURE_PATH})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
