"""Tests for repro.security.roc."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.security.detection import roc_auc
from repro.security.roc import RocCurve, roc_curve


def separable():
    clean = np.array([5.0, 6.0, 7.0, 8.0])
    attack = np.array([1.0, 2.0, 3.0])
    return clean, attack


class TestRocCurve:
    def test_perfect_separation_auc_one(self):
        curve = roc_curve(*separable())
        assert curve.auc == pytest.approx(1.0)

    def test_spans_corners(self):
        curve = roc_curve(*separable())
        assert curve.fpr.min() == 0.0 and curve.fpr.max() == 1.0
        assert curve.tpr.min() == 0.0 and curve.tpr.max() == 1.0

    def test_monotone_in_threshold(self):
        rng = np.random.default_rng(0)
        curve = roc_curve(rng.normal(1, 1, 100), rng.normal(-1, 1, 100))
        assert np.all(np.diff(curve.fpr) >= 0)
        assert np.all(np.diff(curve.tpr) >= 0)

    def test_auc_matches_mann_whitney(self):
        rng = np.random.default_rng(1)
        clean = rng.normal(0.5, 1.0, 200)
        attack = rng.normal(-0.5, 1.0, 150)
        curve = roc_curve(clean, attack)
        assert curve.auc == pytest.approx(roc_auc(clean, attack), abs=0.01)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(2)
        curve = roc_curve(rng.normal(size=500), rng.normal(size=500))
        assert abs(curve.auc - 0.5) < 0.05

    def test_empty_raises(self):
        with pytest.raises(DataError):
            roc_curve([], [1.0])


class TestOperatingPoints:
    def test_threshold_for_fpr(self):
        clean, attack = separable()
        curve = roc_curve(clean, attack)
        thr = curve.threshold_for_fpr(0.0)
        fpr, tpr = curve.operating_point(thr)
        assert fpr == 0.0
        assert tpr == 1.0  # Perfectly separable data.

    def test_budget_validation(self):
        curve = roc_curve(*separable())
        with pytest.raises(ConfigurationError):
            curve.threshold_for_fpr(1.5)

    def test_table_and_ascii(self):
        rng = np.random.default_rng(3)
        curve = roc_curve(rng.normal(1, 1, 100), rng.normal(-1, 1, 100))
        table = curve.to_table()
        assert "FPR budget" in table
        assert "AUC" in table
        plot = curve.to_ascii(width=40, height=8)
        assert "ROC" in plot
