"""Tests for repro.security.mutual_information."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.mutual_information import (
    condition_entropy_bits,
    feature_leakage_profile,
    generator_leakage_profile,
    histogram_mutual_information,
)


class TestHistogramMI:
    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        values = rng.random(3000)
        labels = rng.integers(0, 2, 3000)
        mi = histogram_mutual_information(values, labels)
        assert mi < 0.05

    def test_deterministic_dependency_near_entropy(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        values = labels + rng.normal(0, 0.01, 2000)
        mi = histogram_mutual_information(values, labels)
        assert mi > 0.9  # H(label) = 1 bit.

    def test_mi_nonnegative(self):
        rng = np.random.default_rng(1)
        mi = histogram_mutual_information(rng.random(100), rng.integers(0, 3, 100))
        assert mi >= 0.0

    def test_misaligned_raises(self):
        with pytest.raises(DataError):
            histogram_mutual_information(np.ones(5), np.ones(4))

    def test_rejects_bad_bins(self):
        with pytest.raises(ConfigurationError):
            histogram_mutual_information(np.ones(5), np.ones(5), bins=1)


class TestConditionEntropy:
    def test_uniform_three_conditions(self):
        conds = np.vstack([np.eye(3)] * 10)
        assert condition_entropy_bits(conds) == pytest.approx(np.log2(3))

    def test_degenerate(self):
        conds = np.tile([1.0, 0.0], (20, 1))
        assert condition_entropy_bits(conds) == pytest.approx(0.0)


class TestProfiles:
    def test_feature_profile_identifies_leaky_column(self):
        rng = np.random.default_rng(0)
        n = 400
        labels = rng.integers(0, 2, n)
        leaky = labels * 0.6 + rng.normal(0, 0.05, n)
        noise = rng.random(n)
        conds = np.zeros((n, 2))
        conds[np.arange(n), labels] = 1.0
        ds = FlowPairDataset(np.column_stack([leaky, noise]), conds)
        profile = feature_leakage_profile(ds)
        assert profile[0] > 5 * max(profile[1], 0.01)

    def test_generator_profile(self, toy_dataset):
        def oracle(cond, n, rng):
            center = 0.2 if cond[0] == 1.0 else 0.8
            return np.clip(rng.normal(center, 0.05, size=(n, 4)), 0, 1)

        profile = generator_leakage_profile(
            oracle, toy_dataset.unique_conditions(), n_per_condition=150, seed=0
        )
        assert profile.shape == (4,)
        assert np.all(profile > 0.5)  # Every feature leaks in the oracle.

    def test_real_vs_generated_profiles_correlate(self, trained_cgan, case_split):
        _train, test = case_split
        real = feature_leakage_profile(test)
        gen = generator_leakage_profile(
            trained_cgan, test.unique_conditions(), n_per_condition=100, seed=0
        )
        assert real.shape == gen.shape
        # The CGAN should reproduce at least the rough leakage structure.
        corr = np.corrcoef(real, gen)[0, 1]
        assert corr > 0.0
