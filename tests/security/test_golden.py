"""Golden regression: the engine must reproduce the committed tables.

The fixture pins actual numbers (not just shapes or invariants) for a
fixed-seed mini experiment, so silent numerical drift in the Parzen
scoring, the RNG derivation, or the engine assembly fails loudly.
Intentional changes regenerate it with
``PYTHONPATH=src python -m tests.security.golden --regen``.
"""

import numpy as np
import pytest

from tests.security.golden import (
    FIXTURE_PATH,
    GOLDEN_G_SIZE,
    GOLDEN_H_VALUES,
    GOLDEN_ROOT_ENTROPY,
    compute_golden,
    load_fixture,
)


@pytest.fixture(scope="module")
def fresh():
    return compute_golden()


@pytest.fixture(scope="module")
def pinned():
    assert FIXTURE_PATH.exists(), (
        "missing golden fixture; run "
        "PYTHONPATH=src python -m tests.security.golden --regen"
    )
    return load_fixture()


class TestGoldenFixture:
    def test_metadata_matches(self, pinned):
        assert pinned["root_entropy"] == GOLDEN_ROOT_ENTROPY
        assert pinned["g_size"] == GOLDEN_G_SIZE
        assert set(pinned["tables"]) == {repr(float(h)) for h in GOLDEN_H_VALUES}

    @pytest.mark.parametrize("h", [repr(float(h)) for h in GOLDEN_H_VALUES])
    @pytest.mark.parametrize("table", ["avg_correct", "avg_incorrect"])
    def test_tables_match(self, fresh, pinned, h, table):
        got = np.asarray(fresh["tables"][h][table])
        want = np.asarray(pinned["tables"][h][table])
        # rtol absorbs libm/BLAS variation across platforms; any real
        # change to scoring or seeding is orders of magnitude larger.
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_correct_dominates_incorrect(self, fresh):
        # Sanity on the fixture's physics: the generator is sharply
        # condition-separated, so Cor likelihood must beat Inc per row.
        for tables in fresh["tables"].values():
            cor = np.asarray(tables["avg_correct"])
            inc = np.asarray(tables["avg_incorrect"])
            assert np.all(cor > inc)
