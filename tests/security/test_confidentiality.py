"""Tests for repro.security.confidentiality."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.gan.cgan import ConditionalGAN
from repro.security.confidentiality import (
    SideChannelAttacker,
    leakage_vs_training_data,
)

CONDS = np.array([[1.0, 0.0], [0.0, 1.0]])


def oracle(cond, n, rng):
    center = 0.2 if cond[0] == 1.0 else 0.8
    return np.clip(rng.normal(center, 0.05, size=(n, 4)), 0, 1)


def blind(cond, n, rng):
    return rng.random((n, 4))


class TestAttacker:
    def test_oracle_attacker_near_perfect(self, toy_dataset):
        attacker = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0).fit()
        report = attacker.evaluate(toy_dataset)
        assert report.accuracy > 0.95
        assert report.leakage_ratio > 1.9

    def test_blind_attacker_near_chance(self, toy_dataset):
        attacker = SideChannelAttacker(blind, CONDS, h=0.1, seed=0).fit()
        report = attacker.evaluate(toy_dataset)
        assert 0.25 <= report.accuracy <= 0.75

    def test_confusion_matrix_totals(self, toy_dataset):
        attacker = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0).fit()
        report = attacker.evaluate(toy_dataset)
        assert report.confusion.sum() == len(toy_dataset)

    def test_feature_subset(self, toy_dataset):
        attacker = SideChannelAttacker(
            oracle, CONDS, h=0.1, feature_indices=[0, 1], seed=0
        ).fit()
        report = attacker.evaluate(toy_dataset)
        assert report.accuracy > 0.9

    def test_infer_shapes(self, toy_dataset):
        attacker = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0).fit()
        preds = attacker.infer(toy_dataset.features[:10])
        assert preds.shape == (10,)
        assert set(preds) <= {0, 1}

    def test_unfitted_raises(self, toy_dataset):
        attacker = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0)
        with pytest.raises(NotFittedError):
            attacker.log_likelihoods(toy_dataset.features)

    def test_evaluate_autofits(self, toy_dataset):
        attacker = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0)
        report = attacker.evaluate(toy_dataset)  # No explicit fit().
        assert report.accuracy > 0.9

    def test_unknown_test_label_raises(self, toy_dataset):
        attacker = SideChannelAttacker(
            oracle, np.array([[1.0, 0.0], [0.5, 0.5]]), h=0.1, seed=0
        ).fit()
        with pytest.raises(DataError):
            attacker.evaluate(toy_dataset)

    def test_needs_two_conditions(self):
        with pytest.raises(ConfigurationError):
            SideChannelAttacker(oracle, np.array([[1.0, 0.0]]), h=0.1)

    def test_rejects_bad_h(self):
        with pytest.raises(ConfigurationError):
            SideChannelAttacker(oracle, CONDS, h=0.0)

    def test_report_table(self, toy_dataset):
        report = SideChannelAttacker(oracle, CONDS, h=0.1, seed=0).evaluate(
            toy_dataset
        )
        table = report.to_table()
        assert "accuracy" in table
        assert "Cond1" in table


class TestRealPipeline:
    def test_trained_cgan_beats_chance(self, trained_cgan, case_split):
        _train, test = case_split
        attacker = SideChannelAttacker(
            trained_cgan, test.unique_conditions(), h=0.2, seed=0
        ).fit()
        report = attacker.evaluate(test)
        # Even a briefly trained CGAN leaks well above chance on the
        # simulated printer (paper's core confidentiality finding).
        assert report.accuracy > 1.2 / report.n_conditions


class TestCapabilityStudy:
    def test_fractions_and_monotone_sizes(self, toy_dataset):
        def make():
            return ConditionalGAN(4, 2, noise_dim=4, seed=3)

        results = leakage_vs_training_data(
            make,
            toy_dataset,
            fractions=(0.3, 1.0),
            iterations=150,
            h=0.15,
            seed=0,
        )
        assert len(results) == 2
        (f1, n1, a1), (f2, n2, a2) = results
        assert f1 == 0.3 and f2 == 1.0
        assert n1 < n2
        assert 0.0 <= a1 <= 1.0 and 0.0 <= a2 <= 1.0

    def test_rejects_bad_fraction(self, toy_dataset):
        def make():
            return ConditionalGAN(4, 2, noise_dim=4, seed=3)

        with pytest.raises(ConfigurationError):
            leakage_vs_training_data(
                make, toy_dataset, fractions=(1.5,), iterations=10
            )
