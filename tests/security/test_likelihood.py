"""Tests for repro.security.likelihood (Algorithm 3)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.likelihood import (
    choose_analysis_feature,
    likelihood_h_sweep,
    security_likelihood_analysis,
)


def perfect_sampler(cond, n, rng):
    """An oracle generator: condition [1,0] -> features near 0.2,
    condition [0,1] -> features near 0.8 (matches toy_dataset)."""
    center = 0.2 if cond[0] == 1.0 else 0.8
    return np.clip(rng.normal(center, 0.05, size=(n, 4)), 0, 1)


def useless_sampler(cond, n, rng):
    """Condition-blind generator: uniform noise regardless of cond."""
    return rng.random((n, 4))


class TestAlgorithm3:
    def test_oracle_generator_high_margin(self, toy_dataset):
        res = security_likelihood_analysis(
            perfect_sampler, toy_dataset, h=0.1, g_size=150, seed=0
        )
        assert res.avg_correct.shape == (2, 4)
        # With a perfect conditional model, Cor >> Inc for both conditions.
        margins = res.margin()
        assert np.all(margins.mean(axis=1) > 0.1)

    def test_condition_blind_generator_no_margin(self, toy_dataset):
        res = security_likelihood_analysis(
            useless_sampler, toy_dataset, h=0.1, g_size=150, seed=0
        )
        margins = res.margin().mean(axis=1)
        assert np.all(np.abs(margins) < 0.05)

    def test_feature_indices_subset(self, toy_dataset):
        res = security_likelihood_analysis(
            perfect_sampler, toy_dataset, feature_indices=[0, 2], h=0.2, seed=0
        )
        assert res.avg_correct.shape == (2, 2)
        np.testing.assert_array_equal(res.feature_indices, [0, 2])

    def test_explicit_conditions(self, toy_dataset):
        conds = np.array([[1.0, 0.0]])
        res = security_likelihood_analysis(
            perfect_sampler, toy_dataset, conditions=conds, h=0.2, seed=0
        )
        assert res.avg_correct.shape[0] == 1

    def test_missing_test_condition_raises(self, toy_dataset):
        conds = np.array([[0.5, 0.5]])
        with pytest.raises(DataError):
            security_likelihood_analysis(
                perfect_sampler, toy_dataset, conditions=conds, h=0.2
            )

    def test_rejects_bad_h_and_gsize(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_likelihood_analysis(perfect_sampler, toy_dataset, h=0.0)
        with pytest.raises(ConfigurationError):
            security_likelihood_analysis(perfect_sampler, toy_dataset, g_size=0)

    def test_rejects_bad_feature_indices(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_likelihood_analysis(
                perfect_sampler, toy_dataset, feature_indices=[99]
            )

    def test_rejects_non_sampler(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            security_likelihood_analysis("not a sampler", toy_dataset)

    def test_trained_cgan_accepted(self, trained_cgan, case_split):
        _train, test = case_split
        res = security_likelihood_analysis(
            trained_cgan, test, feature_indices=[10], h=0.3, g_size=50, seed=0
        )
        assert np.all(np.isfinite(res.avg_correct))


class TestResultObject:
    def test_summary_and_table(self, toy_dataset):
        res = security_likelihood_analysis(
            perfect_sampler, toy_dataset, h=0.2, g_size=100, seed=0
        )
        summaries = res.per_condition_summary()
        assert len(summaries) == 2
        table = res.to_table(condition_names=["low", "high"])
        assert "low" in table and "high" in table
        assert "h=0.2" in table


class TestHSweep:
    def test_sweep_keys(self, toy_dataset):
        sweep = likelihood_h_sweep(
            perfect_sampler,
            toy_dataset,
            h_values=(0.2, 0.5),
            g_size=80,
            seed=0,
        )
        assert set(sweep) == {0.2, 0.5}

    def test_incorrect_likelihood_rises_with_h(self, toy_dataset):
        # The paper's Table I trend: larger windows over-smooth, so the
        # incorrect-condition likelihood creeps up toward the correct one.
        sweep = likelihood_h_sweep(
            perfect_sampler,
            toy_dataset,
            h_values=(0.1, 1.0),
            g_size=120,
            seed=0,
        )
        inc_small = sweep[0.1].avg_incorrect.mean()
        inc_large = sweep[1.0].avg_incorrect.mean()
        cor_large = sweep[1.0].avg_correct.mean()
        assert inc_large > inc_small
        assert cor_large - inc_large < sweep[0.1].avg_correct.mean() - inc_small


class TestFeatureChoice:
    def test_picks_discriminative_feature(self):
        # Feature 0 discriminates the conditions; features 1-2 are noise.
        rng = np.random.default_rng(0)
        n = 60
        conds = np.vstack(
            [np.tile([1.0, 0.0], (n, 1)), np.tile([0.0, 1.0], (n, 1))]
        )
        f0 = np.concatenate([rng.normal(0.2, 0.03, n), rng.normal(0.8, 0.03, n)])
        noise = rng.random((2 * n, 2))
        ds = FlowPairDataset(np.column_stack([f0, noise]), conds)

        def sampler(cond, k, rg):
            center = 0.2 if cond[0] == 1.0 else 0.8
            return np.column_stack(
                [rg.normal(center, 0.03, k), rg.random((k, 2))]
            )

        choice = choose_analysis_feature(
            sampler, ds, candidates=[0, 1, 2], h=0.1, seed=0
        )
        assert choice == 0

    def test_rejects_empty_candidates(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            choose_analysis_feature(
                perfect_sampler, toy_dataset, candidates=[], h=0.2
            )


class TestRepeatedAnalysis:
    def test_mean_and_std_shapes(self, toy_dataset):
        from repro.security.likelihood import repeated_likelihood_analysis

        res = repeated_likelihood_analysis(
            perfect_sampler,
            toy_dataset,
            n_repeats=3,
            h=0.1,
            g_size=80,
            seed=0,
        )
        assert res.mean_correct.shape == (2, 4)
        assert res.std_correct.shape == (2, 4)
        assert res.n_repeats == 3

    def test_uncertainty_is_finite_and_small_for_oracle(self, toy_dataset):
        from repro.security.likelihood import repeated_likelihood_analysis

        res = repeated_likelihood_analysis(
            perfect_sampler,
            toy_dataset,
            n_repeats=4,
            h=0.1,
            g_size=150,
            seed=0,
        )
        # Monte-Carlo error well below the oracle's Cor/Inc margin.
        assert res.std_correct.mean() < res.margin().mean()

    def test_deterministic_given_seed(self, toy_dataset):
        from repro.security.likelihood import repeated_likelihood_analysis

        a = repeated_likelihood_analysis(
            perfect_sampler, toy_dataset, n_repeats=2, h=0.1, g_size=50, seed=5
        )
        b = repeated_likelihood_analysis(
            perfect_sampler, toy_dataset, n_repeats=2, h=0.1, g_size=50, seed=5
        )
        np.testing.assert_allclose(a.mean_correct, b.mean_correct)

    def test_table_rendering(self, toy_dataset):
        from repro.security.likelihood import repeated_likelihood_analysis

        res = repeated_likelihood_analysis(
            perfect_sampler, toy_dataset, n_repeats=2, h=0.1, g_size=50, seed=1
        )
        table = res.to_table()
        assert "±" in table
        assert "2 repeats" in table

    def test_rejects_single_repeat(self, toy_dataset):
        from repro.errors import ConfigurationError
        from repro.security.likelihood import repeated_likelihood_analysis

        with pytest.raises(ConfigurationError):
            repeated_likelihood_analysis(
                perfect_sampler, toy_dataset, n_repeats=1, h=0.1
            )
