"""Tests for repro.security.sequence (Viterbi sequence attacker)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, ShapeError
from repro.flows.signal import SignalFlowData
from repro.security.confidentiality import SideChannelAttacker
from repro.security.sequence import (
    CusumDetector,
    EwmaDetector,
    SequenceAttacker,
    TransitionModel,
    viterbi_decode,
)


class TestTransitionModel:
    def test_counts_normalize(self):
        model = TransitionModel(2, smoothing=0.0)
        model.update([0, 0, 1, 0, 1, 1])
        tm = model.transition_matrix
        np.testing.assert_allclose(tm.sum(axis=1), 1.0)
        # Observed transitions: 0->0, 0->1 twice, 1->0, 1->1.
        assert tm[0, 1] == pytest.approx(2 / 3)

    def test_smoothing_keeps_unseen_possible(self):
        model = TransitionModel(3, smoothing=1.0)
        model.update([0, 0, 0])
        assert np.all(model.transition_matrix > 0)

    def test_from_sequences(self):
        model = TransitionModel.from_sequences([[0, 1], [1, 0]], 2)
        assert model.transition_matrix.shape == (2, 2)

    def test_from_signal_flow(self):
        data = SignalFlowData(["x", "y", "x", "y"])
        model = TransitionModel.from_signal_flow(
            data, {"x": 0, "y": 1}, smoothing=0.0
        )
        assert model.transition_matrix[0, 1] == pytest.approx(1.0)

    def test_from_signal_flow_unknown_symbol(self):
        data = SignalFlowData(["x", "q"])
        with pytest.raises(DataError):
            TransitionModel.from_signal_flow(data, {"x": 0, "y": 1})

    def test_rejects_bad_state(self):
        with pytest.raises(DataError):
            TransitionModel(2).update([0, 5])

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            TransitionModel(1)
        with pytest.raises(ConfigurationError):
            TransitionModel(2, smoothing=-1.0)


class TestViterbi:
    def test_follows_strong_emissions(self):
        model = TransitionModel(2, smoothing=1.0)
        ll = np.log(
            np.array([[0.9, 0.1], [0.1, 0.9], [0.9, 0.1]])
        )
        path = viterbi_decode(ll, model)
        np.testing.assert_array_equal(path, [0, 1, 0])

    def test_transition_prior_overrides_weak_emissions(self):
        # Sticky chain: staying is 99x likelier than switching.
        model = TransitionModel(2, smoothing=0.0)
        for _ in range(99):
            model.update([0, 0])
            model.update([1, 1])
        model.update([0, 1])
        model.update([1, 0])
        # Emissions mildly prefer state 1 at t=1 only.
        ll = np.log(np.array([[0.9, 0.1], [0.45, 0.55], [0.9, 0.1]]))
        path = viterbi_decode(ll, model)
        np.testing.assert_array_equal(path, [0, 0, 0])

    def test_single_step(self):
        model = TransitionModel(3)
        ll = np.log(np.array([[0.2, 0.5, 0.3]]))
        assert viterbi_decode(ll, model)[0] == 1

    def test_shape_errors(self):
        model = TransitionModel(2)
        with pytest.raises(ShapeError):
            viterbi_decode(np.zeros(3), model)
        with pytest.raises(ShapeError):
            viterbi_decode(np.zeros((3, 4)), model)
        with pytest.raises(DataError):
            viterbi_decode(np.zeros((0, 2)), model)


class TestSequenceAttacker:
    CONDS = np.array([[1.0, 0.0], [0.0, 1.0]])

    @staticmethod
    def oracle(cond, n, rng):
        center = 0.2 if cond[0] == 1.0 else 0.8
        return np.clip(rng.normal(center, 0.08, size=(n, 4)), 0, 1)

    def _noisy_sequence(self, seed=0, n=40, flip=0.0):
        """A sticky true sequence and matching (noisy) observations."""
        rng = np.random.default_rng(seed)
        states = [0]
        for _ in range(n - 1):
            if rng.random() < 0.1:
                states.append(1 - states[-1])
            else:
                states.append(states[-1])
        centers = np.where(np.array(states) == 0, 0.2, 0.8)
        feats = np.clip(
            rng.normal(centers[:, None], 0.25, size=(n, 4)), 0, 1
        )
        return np.array(states), feats

    def test_smoothing_beats_independent(self):
        true, feats = self._noisy_sequence(seed=3)
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0).fit()
        independent_acc = float((base.infer(feats) == true).mean())

        transition = TransitionModel(2, smoothing=1.0)
        for seed in range(5):
            seq, _ = self._noisy_sequence(seed=100 + seed)
            transition.update(seq)
        seq_attacker = SequenceAttacker(base, transition)
        smoothed_acc = seq_attacker.sequence_accuracy(feats, true)
        assert smoothed_acc >= independent_acc

    def test_state_count_mismatch(self):
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0)
        with pytest.raises(ConfigurationError):
            SequenceAttacker(base, TransitionModel(3))

    def test_autofits_base(self):
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0)
        attacker = SequenceAttacker(base, TransitionModel(2))
        _true, feats = self._noisy_sequence(seed=1, n=5)
        path = attacker.infer_sequence(feats)
        assert path.shape == (5,)


class TestCusumDetector:
    def test_sustained_deficit_alarms_single_dip_does_not(self):
        det = CusumDetector(reference=0.0, scale=1.0, drift=0.5, threshold=3.0)
        # One bad window: z=2, S=1.5 — below threshold, no alarm.
        assert det.update(-2.0) is False
        # Sustained deficit: z=1.5 per window accumulates 1.0/step.
        det = CusumDetector(reference=0.0, scale=1.0, drift=0.5, threshold=3.0)
        flags = det.update_many([-1.5] * 5)
        assert flags.tolist() == [False, False, False, True, False]
        assert det.alarms == [3]

    def test_drift_absorbs_calibration_noise(self):
        det = CusumDetector(reference=0.0, scale=1.0, drift=0.5, threshold=3.0)
        # Deviations at exactly the allowance never accumulate.
        det.update_many([-0.5] * 100)
        assert det.statistic == 0.0
        assert det.alarms == []

    def test_normal_scores_clamp_at_zero(self):
        det = CusumDetector(reference=0.0, scale=1.0, drift=0.5, threshold=3.0)
        det.update_many([5.0] * 10)  # very normal: z is negative
        assert det.statistic == 0.0

    def test_reset_on_alarm_yields_episodes(self):
        resetting = CusumDetector(drift=0.0, threshold=2.0, reset_on_alarm=True)
        saturated = CusumDetector(drift=0.0, threshold=2.0, reset_on_alarm=False)
        bad = [-1.0] * 9  # z=1 per window
        resetting.update_many(bad)
        saturated.update_many(bad)
        # Resetting: alarms at 2, 5, 8 (recount after each); saturated:
        # stays above threshold from window 2 on.
        assert resetting.alarms == [2, 5, 8]
        assert saturated.alarms == [2, 3, 4, 5, 6, 7, 8]

    def test_from_calibration_normalizes(self):
        rng = np.random.default_rng(0)
        clean = rng.normal(10.0, 2.0, size=500)
        det = CusumDetector.from_calibration(clean, drift=0.5, threshold=5.0)
        assert det.reference == pytest.approx(clean.mean())
        assert det.scale == pytest.approx(clean.std())
        # Clean-like scores should not alarm.
        det.update_many(rng.normal(10.0, 2.0, size=200))
        assert det.alarms == []
        # A sustained 3-sigma drop must.
        det.update_many(np.full(20, 10.0 - 6.0))
        assert det.alarms

    def test_constant_calibration_scores_get_floor_scale(self):
        det = CusumDetector.from_calibration([3.0, 3.0, 3.0])
        assert det.scale > 0

    def test_batching_never_changes_alarms(self):
        rng = np.random.default_rng(4)
        scores = rng.normal(0.0, 2.0, size=200)
        one = CusumDetector(drift=0.2, threshold=2.0)
        for s in scores:
            one.update(float(s))
        many = CusumDetector(drift=0.2, threshold=2.0)
        many.update_many(scores)
        assert one.alarms == many.alarms
        assert one.statistic == many.statistic

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(scale=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(drift=-0.1)
        with pytest.raises(DataError):
            CusumDetector.from_calibration([1.0])


class TestEwmaDetector:
    def test_sustained_shift_alarms(self):
        det = EwmaDetector(reference=0.0, scale=1.0, alpha=0.3, threshold=2.0)
        flags = det.update_many([-3.0] * 20)
        assert flags.any()
        # EWMA of z=3 converges to 3 > 2, so the alarm is inevitable.
        assert det.alarms[0] < 10

    def test_single_outlier_is_smoothed_away(self):
        det = EwmaDetector(reference=0.0, scale=1.0, alpha=0.2, threshold=2.0)
        assert det.update(-5.0) is False  # E = 0.2 * 5 = 1.0 < 2
        det.update_many([0.0] * 20)
        assert det.alarms == []

    def test_alpha_one_is_memoryless(self):
        det = EwmaDetector(alpha=1.0, threshold=2.0)
        assert det.update(-3.0) is True
        assert det.update(0.0) is False

    def test_from_calibration_and_batching_equivalence(self):
        rng = np.random.default_rng(5)
        clean = rng.normal(2.0, 0.5, size=300)
        test = rng.normal(1.0, 0.5, size=100)
        one = EwmaDetector.from_calibration(clean, alpha=0.3, threshold=1.5)
        many = EwmaDetector.from_calibration(clean, alpha=0.3, threshold=1.5)
        for s in test:
            one.update(float(s))
        many.update_many(test)
        assert one.alarms == many.alarms
        assert one.statistic == many.statistic

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaDetector(alpha=1.5)
