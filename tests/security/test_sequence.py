"""Tests for repro.security.sequence (Viterbi sequence attacker)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, ShapeError
from repro.flows.signal import SignalFlowData
from repro.security.confidentiality import SideChannelAttacker
from repro.security.sequence import (
    SequenceAttacker,
    TransitionModel,
    viterbi_decode,
)


class TestTransitionModel:
    def test_counts_normalize(self):
        model = TransitionModel(2, smoothing=0.0)
        model.update([0, 0, 1, 0, 1, 1])
        tm = model.transition_matrix
        np.testing.assert_allclose(tm.sum(axis=1), 1.0)
        # Observed transitions: 0->0, 0->1 twice, 1->0, 1->1.
        assert tm[0, 1] == pytest.approx(2 / 3)

    def test_smoothing_keeps_unseen_possible(self):
        model = TransitionModel(3, smoothing=1.0)
        model.update([0, 0, 0])
        assert np.all(model.transition_matrix > 0)

    def test_from_sequences(self):
        model = TransitionModel.from_sequences([[0, 1], [1, 0]], 2)
        assert model.transition_matrix.shape == (2, 2)

    def test_from_signal_flow(self):
        data = SignalFlowData(["x", "y", "x", "y"])
        model = TransitionModel.from_signal_flow(
            data, {"x": 0, "y": 1}, smoothing=0.0
        )
        assert model.transition_matrix[0, 1] == pytest.approx(1.0)

    def test_from_signal_flow_unknown_symbol(self):
        data = SignalFlowData(["x", "q"])
        with pytest.raises(DataError):
            TransitionModel.from_signal_flow(data, {"x": 0, "y": 1})

    def test_rejects_bad_state(self):
        with pytest.raises(DataError):
            TransitionModel(2).update([0, 5])

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            TransitionModel(1)
        with pytest.raises(ConfigurationError):
            TransitionModel(2, smoothing=-1.0)


class TestViterbi:
    def test_follows_strong_emissions(self):
        model = TransitionModel(2, smoothing=1.0)
        ll = np.log(
            np.array([[0.9, 0.1], [0.1, 0.9], [0.9, 0.1]])
        )
        path = viterbi_decode(ll, model)
        np.testing.assert_array_equal(path, [0, 1, 0])

    def test_transition_prior_overrides_weak_emissions(self):
        # Sticky chain: staying is 99x likelier than switching.
        model = TransitionModel(2, smoothing=0.0)
        for _ in range(99):
            model.update([0, 0])
            model.update([1, 1])
        model.update([0, 1])
        model.update([1, 0])
        # Emissions mildly prefer state 1 at t=1 only.
        ll = np.log(np.array([[0.9, 0.1], [0.45, 0.55], [0.9, 0.1]]))
        path = viterbi_decode(ll, model)
        np.testing.assert_array_equal(path, [0, 0, 0])

    def test_single_step(self):
        model = TransitionModel(3)
        ll = np.log(np.array([[0.2, 0.5, 0.3]]))
        assert viterbi_decode(ll, model)[0] == 1

    def test_shape_errors(self):
        model = TransitionModel(2)
        with pytest.raises(ShapeError):
            viterbi_decode(np.zeros(3), model)
        with pytest.raises(ShapeError):
            viterbi_decode(np.zeros((3, 4)), model)
        with pytest.raises(DataError):
            viterbi_decode(np.zeros((0, 2)), model)


class TestSequenceAttacker:
    CONDS = np.array([[1.0, 0.0], [0.0, 1.0]])

    @staticmethod
    def oracle(cond, n, rng):
        center = 0.2 if cond[0] == 1.0 else 0.8
        return np.clip(rng.normal(center, 0.08, size=(n, 4)), 0, 1)

    def _noisy_sequence(self, seed=0, n=40, flip=0.0):
        """A sticky true sequence and matching (noisy) observations."""
        rng = np.random.default_rng(seed)
        states = [0]
        for _ in range(n - 1):
            if rng.random() < 0.1:
                states.append(1 - states[-1])
            else:
                states.append(states[-1])
        centers = np.where(np.array(states) == 0, 0.2, 0.8)
        feats = np.clip(
            rng.normal(centers[:, None], 0.25, size=(n, 4)), 0, 1
        )
        return np.array(states), feats

    def test_smoothing_beats_independent(self):
        true, feats = self._noisy_sequence(seed=3)
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0).fit()
        independent_acc = float((base.infer(feats) == true).mean())

        transition = TransitionModel(2, smoothing=1.0)
        for seed in range(5):
            seq, _ = self._noisy_sequence(seed=100 + seed)
            transition.update(seq)
        seq_attacker = SequenceAttacker(base, transition)
        smoothed_acc = seq_attacker.sequence_accuracy(feats, true)
        assert smoothed_acc >= independent_acc

    def test_state_count_mismatch(self):
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0)
        with pytest.raises(ConfigurationError):
            SequenceAttacker(base, TransitionModel(3))

    def test_autofits_base(self):
        base = SideChannelAttacker(self.oracle, self.CONDS, h=0.15, seed=0)
        attacker = SequenceAttacker(base, TransitionModel(2))
        _true, feats = self._noisy_sequence(seed=1, n=5)
        path = attacker.infer_sequence(feats)
        assert path.shape == (5,)
