"""Tests for repro.security.report."""

from repro.security.report import build_security_report


class TestSecurityReport:
    def test_full_report_structure(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan, test, pair_name="(F18 | F1)", h=0.2, g_size=80, seed=0
        )
        assert report.pair_name == "(F18 | F1)"
        assert report.condition_entropy > 1.0  # 3 roughly-uniform conditions.
        assert report.mi_profile.shape == (test.feature_dim,)
        assert 0.0 <= report.leakage.accuracy <= 1.0

    def test_text_rendering(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan, test, h=0.2, g_size=80, seed=0
        )
        text = report.to_text(condition_names=["X", "Y", "Z"])
        assert "GAN-Sec security report" in text
        assert "VERDICT" in text
        assert "Confidentiality" in text

    def test_verdict_levels(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan, test, h=0.2, g_size=80, seed=0
        )
        assert report.verdict() in {
            "SEVERE leakage: emissions reveal the cyber signal",
            "MODERATE leakage: emissions partially reveal the cyber signal",
            "LOW leakage: emissions are close to uninformative",
        }

    def test_leaked_bits_bound(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan, test, h=0.2, g_size=80, seed=0
        )
        assert report.leaked_bits_upper_bound <= report.condition_entropy + 0.3


class TestDetectionSection:
    def test_included_on_request(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan,
            test,
            h=0.2,
            g_size=80,
            include_detection=True,
            seed=0,
        )
        assert report.detection is not None
        assert 0.0 <= report.detection.auc <= 1.0
        text = report.to_text()
        assert "Integrity/availability detection" in text

    def test_absent_by_default(self, trained_cgan, case_split):
        _train, test = case_split
        report = build_security_report(
            trained_cgan, test, h=0.2, g_size=80, seed=0
        )
        assert report.detection is None
        assert "Integrity/availability" not in report.to_text()
