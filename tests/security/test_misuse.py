"""Misuse-resistance of the public security entry points.

Every public function/class in likelihood.py, detection.py, roc.py,
confidentiality.py, and engine.py must fail loudly and specifically —
NotFittedError for untrained models, ShapeError/DataError for
misaligned inputs — rather than producing silently wrong tables.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ShapeError,
)
from repro.gan import ConditionalGAN
from repro.security import (
    EmissionAttackDetector,
    SideChannelAttacker,
    choose_analysis_feature,
    likelihood_h_sweep,
    roc_auc,
    roc_curve,
    security_analysis,
    security_likelihood_analysis,
)

CONDS = np.array([[1.0, 0.0], [0.0, 1.0]])


def dummy_sampler(condition, n, rng):
    return rng.normal(size=(n, 4))


@pytest.fixture()
def untrained_cgan():
    return ConditionalGAN(4, 2, seed=0)


class TestLikelihoodEntryPoints:
    def test_untrained_cgan_raises(self, untrained_cgan, toy_dataset):
        with pytest.raises(NotFittedError):
            security_likelihood_analysis(untrained_cgan, toy_dataset)

    def test_h_sweep_untrained_cgan_raises(self, untrained_cgan, toy_dataset):
        with pytest.raises(NotFittedError):
            likelihood_h_sweep(untrained_cgan, toy_dataset)

    def test_choose_feature_untrained_cgan_raises(
        self, untrained_cgan, toy_dataset
    ):
        with pytest.raises(NotFittedError):
            choose_analysis_feature(untrained_cgan, toy_dataset)

    def test_engine_untrained_cgan_raises(self, untrained_cgan, toy_dataset):
        with pytest.raises(NotFittedError):
            security_analysis(untrained_cgan, toy_dataset)

    def test_condition_shape_mismatch_raises(self, toy_dataset):
        with pytest.raises(ShapeError):
            security_likelihood_analysis(
                dummy_sampler, toy_dataset, conditions=[[1.0, 0.0, 0.0]]
            )

    def test_engine_condition_shape_mismatch_raises(self, toy_dataset):
        with pytest.raises(ShapeError):
            security_analysis(
                dummy_sampler, toy_dataset, conditions=[[1.0, 0.0, 0.0]]
            )


class TestDetectionEntryPoints:
    def test_untrained_cgan_in_constructor_raises(self, untrained_cgan):
        with pytest.raises(NotFittedError):
            EmissionAttackDetector(untrained_cgan, CONDS)

    def test_score_before_fit_raises(self):
        detector = EmissionAttackDetector(dummy_sampler, CONDS, g_size=20)
        with pytest.raises(NotFittedError):
            detector.score(np.zeros((3, 4)), CONDS[0])

    def test_detect_before_calibrate_raises(self):
        detector = EmissionAttackDetector(
            dummy_sampler, CONDS, g_size=20, seed=0
        ).fit()
        with pytest.raises(NotFittedError):
            detector.detect(np.zeros((3, 4)), CONDS[0])

    def test_misaligned_claims_raise(self):
        detector = EmissionAttackDetector(
            dummy_sampler, CONDS, g_size=20, seed=0
        ).fit()
        with pytest.raises(DataError):
            detector.score(np.zeros((3, 4)), CONDS)  # 3 samples, 2 claims

    def test_unknown_claimed_condition_raises(self):
        detector = EmissionAttackDetector(
            dummy_sampler, CONDS, g_size=20, seed=0
        ).fit()
        with pytest.raises(DataError):
            detector.score(np.zeros((1, 4)), [[0.5, 0.5]])

    def test_roc_auc_empty_raises(self):
        with pytest.raises(DataError):
            roc_auc([], [1.0])
        with pytest.raises(DataError):
            roc_auc([1.0], [])


class TestRocEntryPoints:
    def test_empty_scores_raise(self):
        with pytest.raises(DataError):
            roc_curve([], [0.0])
        with pytest.raises(DataError):
            roc_curve([0.0], [])

    def test_threshold_for_fpr_out_of_range(self):
        curve = roc_curve([1.0, 2.0, 3.0], [0.0, 0.5])
        with pytest.raises(ConfigurationError):
            curve.threshold_for_fpr(1.5)

    def test_negative_fpr_budget_rejected(self):
        curve = roc_curve([1.0, 1.0], [0.0])
        with pytest.raises(ConfigurationError):
            curve.threshold_for_fpr(-0.1)


class TestConfidentialityEntryPoints:
    def test_untrained_cgan_in_constructor_raises(self, untrained_cgan):
        with pytest.raises(NotFittedError):
            SideChannelAttacker(untrained_cgan, CONDS)

    def test_log_likelihoods_before_fit_raises(self):
        attacker = SideChannelAttacker(dummy_sampler, CONDS, g_size=20)
        with pytest.raises(NotFittedError):
            attacker.log_likelihoods(np.zeros((2, 4)))

    def test_infer_before_fit_raises(self):
        attacker = SideChannelAttacker(dummy_sampler, CONDS, g_size=20)
        with pytest.raises(NotFittedError):
            attacker.infer(np.zeros((2, 4)))

    def test_single_condition_rejected(self):
        with pytest.raises(ConfigurationError):
            SideChannelAttacker(dummy_sampler, [[1.0, 0.0]])

    def test_feature_width_mismatch_raises(self):
        attacker = SideChannelAttacker(
            dummy_sampler, CONDS, g_size=20, seed=0
        ).fit()
        with pytest.raises(DataError):
            attacker.log_likelihoods(np.zeros((2, 7)))

    def test_evaluate_with_foreign_condition_raises(self, toy_dataset):
        attacker = SideChannelAttacker(
            dummy_sampler,
            [[1.0, 0.0], [0.5, 0.5]],  # does not cover toy's [0,1]
            g_size=20,
            seed=0,
        ).fit()
        with pytest.raises(DataError):
            attacker.evaluate(toy_dataset)
