"""Tests for repro.security.detection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.security.detection import EmissionAttackDetector, roc_auc

CONDS = np.array([[1.0, 0.0], [0.0, 1.0]])


def oracle(cond, n, rng):
    center = 0.2 if cond[0] == 1.0 else 0.8
    return np.clip(rng.normal(center, 0.05, size=(n, 4)), 0, 1)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc(np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_inverted(self):
        assert roc_auc(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 0.0

    def test_identical_half(self):
        auc = roc_auc(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert auc == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(DataError):
            roc_auc(np.array([]), np.array([1.0]))


class TestDetector:
    def test_detects_swapped_conditions(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        detector.calibrate(toy_dataset, false_positive_rate=0.05)
        # Attack: claim the *other* condition for each sample.
        swapped = toy_dataset.conditions[:, ::-1]
        report = detector.evaluate(
            toy_dataset, toy_dataset.features, swapped
        )
        assert report.auc > 0.95
        assert report.true_positive_rate > 0.8
        assert report.false_positive_rate < 0.15

    def test_clean_data_scores_high(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        clean = detector.score(toy_dataset.features, toy_dataset.conditions)
        swapped = detector.score(
            toy_dataset.features, toy_dataset.conditions[:, ::-1]
        )
        assert clean.mean() > swapped.mean()

    def test_calibrate_threshold_quantile(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        thr = detector.calibrate(toy_dataset, false_positive_rate=0.1)
        scores = detector.score(toy_dataset.features, toy_dataset.conditions)
        fpr = (scores < thr).mean()
        assert fpr <= 0.15

    def test_detect_requires_calibration(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        with pytest.raises(NotFittedError):
            detector.detect(toy_dataset.features, toy_dataset.conditions)

    def test_score_requires_fit(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0)
        with pytest.raises(NotFittedError):
            detector.score(toy_dataset.features, toy_dataset.conditions)

    def test_unknown_claim_raises(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        with pytest.raises(DataError):
            detector.score(toy_dataset.features[:1], np.array([[0.5, 0.5]]))

    def test_broadcast_single_claim(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        scores = detector.score(toy_dataset.features[:5], np.array([1.0, 0.0]))
        assert scores.shape == (5,)

    def test_calibrate_rejects_bad_fpr(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        with pytest.raises(ConfigurationError):
            detector.calibrate(toy_dataset, false_positive_rate=1.0)

    def test_evaluate_autocalibrates(self, toy_dataset):
        detector = EmissionAttackDetector(oracle, CONDS, h=0.1, seed=0).fit()
        report = detector.evaluate(
            toy_dataset, toy_dataset.features, toy_dataset.conditions[:, ::-1]
        )
        assert report.threshold is not None
        assert "AUC" in report.summary()
