"""Tests for repro.security.attacks (attack injection)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.flows.dataset import FlowPairDataset
from repro.security.attacks import (
    axis_swap_attack,
    feed_rate_attack,
    motor_stall_attack,
)


class TestAxisSwap:
    def test_claims_differ_from_truth(self, toy_dataset):
        features, claims = axis_swap_attack(toy_dataset, seed=0)
        assert features.shape[0] == claims.shape[0] == len(toy_dataset)
        # Claimed conditions are valid one-hots from the dataset's set.
        valid = {tuple(c) for c in toy_dataset.unique_conditions()}
        assert all(tuple(c) in valid for c in claims)

    def test_features_are_real_rows(self, toy_dataset):
        features, _ = axis_swap_attack(toy_dataset, seed=1, n_attacks=10)
        real = {tuple(r) for r in toy_dataset.features}
        assert all(tuple(r) in real for r in features)

    def test_needs_two_conditions(self):
        ds = FlowPairDataset(np.random.rand(10, 3), np.tile([1.0], (10, 1)))
        with pytest.raises(DataError):
            axis_swap_attack(ds)

    def test_rejects_bad_count(self, toy_dataset):
        with pytest.raises(ConfigurationError):
            axis_swap_attack(toy_dataset, n_attacks=0)

    def test_deterministic(self, toy_dataset):
        f1, c1 = axis_swap_attack(toy_dataset, seed=9, n_attacks=5)
        f2, c2 = axis_swap_attack(toy_dataset, seed=9, n_attacks=5)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(c1, c2)


class TestPhysicalAttacks:
    def test_motor_stall_features_near_silence(self, case_study):
        ds, extractor, encoder, runs = case_study
        from repro.manufacturing import Printer3D

        printer = Printer3D(sample_rate=12000.0, seed=5)
        features, claims = motor_stall_attack(
            printer, extractor, encoder, "X", n_moves=4, seed=0
        )
        assert features.shape[0] == claims.shape[0]
        assert features.shape[1] == ds.feature_dim
        # Silent emissions sit at the bottom of the scaled feature range,
        # well below typical running-motor features.
        assert features.mean() < ds.features.mean()

    def test_feed_rate_attack_shifts_features(self, case_study):
        ds, extractor, encoder, _runs = case_study
        from repro.manufacturing import Printer3D

        printer = Printer3D(sample_rate=12000.0, seed=5)
        features, claims = feed_rate_attack(
            printer, extractor, encoder, "X", scale=2.5, n_moves=4, seed=0
        )
        assert features.shape[0] == claims.shape[0]
        assert np.all(claims.sum(axis=1) == 1.0)

    def test_feed_rate_rejects_identity_scale(self, case_study):
        _ds, extractor, encoder, _runs = case_study
        from repro.manufacturing import Printer3D

        printer = Printer3D(sample_rate=12000.0, seed=5)
        with pytest.raises(ConfigurationError):
            feed_rate_attack(printer, extractor, encoder, "X", scale=1.0)

    def test_feed_rate_rejects_bad_scale(self, case_study):
        _ds, extractor, encoder, _runs = case_study
        from repro.manufacturing import Printer3D

        printer = Printer3D(sample_rate=12000.0, seed=5)
        with pytest.raises(ConfigurationError):
            feed_rate_attack(printer, extractor, encoder, "X", scale=0.0)
