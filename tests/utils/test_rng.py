"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_rng(5).random(4)
        b = as_rng(5).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        out = as_rng(seq)
        assert isinstance(out, np.random.Generator)


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_deterministic_from_int(self):
        a1, b1 = spawn_rngs(7, 2)
        a2, b2 = spawn_rngs(7, 2)
        np.testing.assert_array_equal(a1.random(4), a2.random(4))
        np.testing.assert_array_equal(b1.random(4), b2.random(4))

    def test_from_generator(self):
        parent = np.random.default_rng(1)
        kids = spawn_rngs(parent, 3)
        assert len(kids) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
