"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, ShapeError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability_vector,
)


class TestCheckArray:
    def test_coerces_lists(self):
        out = check_array([1, 2, 3], "x")
        assert isinstance(out, np.ndarray)
        assert out.dtype == float

    def test_ndim_single(self):
        with pytest.raises(ShapeError, match="ndim"):
            check_array([[1.0]], "x", ndim=1)

    def test_ndim_tuple(self):
        check_array([[1.0]], "x", ndim=(1, 2))
        check_array([1.0], "x", ndim=(1, 2))

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="empty"):
            check_array([], "x")

    def test_empty_allowed(self):
        out = check_array([], "x", allow_empty=True)
        assert out.size == 0

    def test_nan_rejected(self):
        with pytest.raises(DataError, match="non-finite"):
            check_array([1.0, np.nan], "x")

    def test_inf_rejected(self):
        with pytest.raises(DataError):
            check_array([np.inf], "x")


class TestScalars:
    def test_positive_strict(self):
        assert check_positive(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_positive_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ConfigurationError):
            check_positive(-1.0, "x", strict=False)

    def test_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 0, 1) == 1.0
        with pytest.raises(ConfigurationError):
            check_in_range(1.5, "x", 0, 1)

    def test_in_range_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_in_range(0.0, "x", 0, 1, inclusive=False)


class TestProbabilityVector:
    def test_valid(self):
        out = check_probability_vector([0.25, 0.75], "p")
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_rejects_bad_sum(self):
        with pytest.raises(DataError, match="sum"):
            check_probability_vector([0.5, 0.6], "p")

    def test_rejects_negative(self):
        with pytest.raises(DataError):
            check_probability_vector([-0.1, 1.1], "p")

    def test_clips_tiny_noise(self):
        out = check_probability_vector([1.0 + 1e-12, -1e-12], "p")
        assert np.all(out >= 0)
