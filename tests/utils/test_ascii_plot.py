"""Tests for repro.utils.ascii_plot."""

import numpy as np
import pytest

from repro.utils.ascii_plot import ascii_histogram, ascii_line_plot


class TestLinePlot:
    def test_contains_series_glyphs_and_legend(self):
        out = ascii_line_plot({"g_loss": [3, 2, 1], "d_loss": [1, 2, 3]})
        assert "legend:" in out
        assert "g_loss" in out and "d_loss" in out

    def test_title_and_labels(self):
        out = ascii_line_plot({"a": [0, 1]}, title="T", xlabel="iter", ylabel="loss")
        assert out.splitlines()[0] == "T"
        assert "iter" in out
        assert "loss" in out

    def test_constant_series_no_crash(self):
        out = ascii_line_plot({"flat": [1.0, 1.0, 1.0]})
        assert "flat" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})

    def test_dimensions(self):
        out = ascii_line_plot({"a": np.arange(50)}, width=30, height=5)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert len(plot_lines) == 5


class TestHistogram:
    def test_counts_sum(self):
        values = np.random.default_rng(0).normal(size=200)
        out = ascii_histogram(values, bins=10)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 200

    def test_title(self):
        out = ascii_histogram([1.0, 2.0], title="H")
        assert out.splitlines()[0] == "H"
