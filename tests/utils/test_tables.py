"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_grouped_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table([["a", 1.5], ["bb", 2.25]], ["name", "value"])
        lines = out.splitlines()
        assert lines[1].startswith("|")
        assert "1.5000" in out
        assert "2.2500" in out

    def test_title(self):
        out = format_table([[1.0]], ["x"], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table([[1, 2]], ["only-one"])

    def test_float_fmt(self):
        out = format_table([[3.14159]], ["pi"], float_fmt=".2f")
        assert "3.14" in out
        assert "3.1416" not in out

    def test_non_float_cells_passthrough(self):
        out = format_table([[42, "text"]], ["n", "s"])
        assert "42" in out and "text" in out

    def test_alignment(self):
        out = format_table([["x", 1.0], ["longer", 2.0]], ["a", "b"])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # All rows equal width.


class TestGroupedTable:
    def test_table1_shape(self):
        values = [
            [[0.6, 0.22], [0.6, 0.32]],
            [[0.57, 0.38], [0.57, 0.39]],
        ]
        out = format_grouped_table(
            ["Cond1", "Cond2"],
            ["h=0.2", "h=0.4"],
            ["Cor", "Inc"],
            values,
        )
        assert "h=0.2 Cor" in out
        assert "h=0.4 Inc" in out
        assert "Cond2" in out

    def test_bad_group_width(self):
        with pytest.raises(ValueError, match="expected"):
            format_grouped_table(["r"], ["g"], ["a", "b"], [[[1.0]]])
