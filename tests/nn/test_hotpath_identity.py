"""Bitwise-identity guarantees for the zero-allocation training hot path.

The preallocated workspaces in ``repro.nn`` and ``repro.gan`` replace
every per-iteration allocation of the seed implementation with in-place
writes that replicate the original operation sequence exactly.  These
tests pin that contract:

* fixed-seed training trajectories hash to golden digests recorded from
  the pre-optimization implementation,
* the rewritten sigmoid matches the sign-masked formulation bitwise,
* buffer reuse never leaks into values handed back to callers.
"""

import hashlib

import numpy as np
import pytest

from repro.flows.dataset import FlowPairDataset
from repro.gan.cgan import ConditionalGAN
from repro.gan.noise import GaussianNoise, UniformNoise
from repro.nn.activations import Sigmoid
from repro.nn.layers import BatchNorm, Dense, Dropout
from repro.nn.optimizers import SGD, RMSProp

# SHA-256 of the post-training weights produced by the *seed* (allocating)
# implementation for the two recipes below, recorded before the hot-path
# rewrite.  Any bitwise drift in the training trajectory changes these.
GOLDEN_ADAM_DEFAULT = (
    "3a8a965f2cd5f22aa9743b8f6e298c22631fde6dbae9157da07773df90b9d748"
)
GOLDEN_SGD_RMSPROP_BN = (
    "8d621564040ca890eea50b528a58f8e7d0ba38e790fc6f2487c950012923eba5"
)


def _weights_digest(gan: ConditionalGAN) -> str:
    h = hashlib.sha256()
    for net in (gan.generator, gan.discriminator):
        weights = net.get_weights()
        for key in sorted(weights):
            h.update(key.encode())
            h.update(weights[key].tobytes())
    return h.hexdigest()


def _dataset():
    rng = np.random.default_rng(123)
    feats = rng.uniform(size=(24, 8))
    conds = np.tile(np.eye(3), (8, 1))
    return FlowPairDataset(feats, conds)


class TestGoldenTrajectories:
    def test_adam_default_architecture(self):
        gan = ConditionalGAN(8, 3, noise_dim=4, seed=7)
        gan.train(
            _dataset(),
            iterations=40,
            batch_size=8,
            k_disc=2,
            label_smoothing=0.1,
        )
        assert _weights_digest(gan) == GOLDEN_ADAM_DEFAULT

    def test_sgd_rmsprop_batchnorm_uniform(self):
        gan = ConditionalGAN(
            8,
            3,
            noise_dim=4,
            generator_layers=[
                Dense(16, "relu"),
                BatchNorm(),
                Dense(8, "sigmoid"),
            ],
            discriminator_layers=[
                Dense(16, "leaky_relu"),
                Dropout(0.25, seed=11),
                Dense(1, "sigmoid"),
            ],
            noise="uniform",
            g_optimizer=SGD(0.05, momentum=0.9, nesterov=True),
            d_optimizer=RMSProp(0.002),
            generator_loss="minimax",
            seed=7,
        )
        gan.train(_dataset(), iterations=40, batch_size=8)
        assert _weights_digest(gan) == GOLDEN_SGD_RMSPROP_BN


class TestSigmoidBitwise:
    @staticmethod
    def _masked_reference(x):
        # The seed formulation: sign-split gather/scatter evaluation.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def test_matches_masked_formulation_bitwise(self):
        rng = np.random.default_rng(0)
        x = rng.normal(scale=50.0, size=(64, 32))
        got = Sigmoid().forward(x)
        np.testing.assert_array_equal(got, self._masked_reference(x))

    def test_edge_values(self):
        x = np.array([0.0, -0.0, np.inf, -np.inf, 710.0, -710.0, 1e-300])
        got = Sigmoid().forward(x)
        np.testing.assert_array_equal(got, self._masked_reference(x))

    def test_out_buffer_same_bits(self):
        x = np.linspace(-30, 30, 101)
        buf = np.empty_like(x)
        assert Sigmoid().forward(x, out=buf) is buf
        np.testing.assert_array_equal(buf, Sigmoid().forward(x))


class TestBufferSafety:
    def test_predict_results_not_aliased_across_calls(self):
        # Inference output must survive later forward passes — e.g. the
        # security engine's ConditionSampleCache keeps predict() results
        # long-term.  Training workspaces must never be handed out.
        net_gan = ConditionalGAN(6, 2, noise_dim=3, seed=0)
        conds = np.eye(2)
        first = net_gan.generate(conds, seed=1)
        snapshot = first.copy()
        net_gan.generate(np.ones((5, 2)), seed=2)
        net_gan.train(
            FlowPairDataset(
                np.random.default_rng(0).uniform(size=(8, 6)),
                np.tile(np.eye(2), (4, 1)),
            ),
            iterations=3,
            batch_size=4,
        )
        np.testing.assert_array_equal(first, snapshot)

    def test_dense_training_rebatch(self):
        # Consecutive training batches of different sizes must not share
        # or corrupt workspaces.
        layer = Dense(4, "relu")
        layer.build(3, np.random.default_rng(0))
        out8 = layer.forward(np.ones((8, 3)), training=True).copy()
        layer.forward(np.zeros((2, 3)), training=True)
        np.testing.assert_array_equal(
            out8, layer.forward(np.ones((8, 3)), training=True)
        )

    def test_train_twice_same_buffers_consistent(self):
        gan = ConditionalGAN(8, 3, noise_dim=4, seed=7)
        ds = _dataset()
        gan.train(ds, iterations=5, batch_size=8)
        # Buffers allocated once per batch size and reused.
        assert set(gan._train_buffers) == {8}
        gan.train(ds, iterations=5, batch_size=4)
        assert set(gan._train_buffers) == {8, 4}


class TestNoiseSampleInto:
    @pytest.mark.parametrize(
        "prior",
        [
            GaussianNoise(4),
            UniformNoise(4),
            UniformNoise(4, low=-2.0, high=3.0),
            GaussianNoise(4, std=0.5),
        ],
        ids=["gauss", "unit-uniform", "affine-uniform", "scaled-gauss"],
    )
    def test_values_and_stream_match_sample(self, prior):
        # Same values AND same post-call RNG state as the allocating
        # sample(): the training loop interleaves draws with dataset
        # sampling, so stream position is part of the contract.
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        want = prior.sample(6, rng_a)
        buf = np.empty((6, 4))
        got = prior.sample_into(buf, rng_b)
        assert got is buf
        np.testing.assert_array_equal(got, want)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestSampleBatchOut:
    def test_matches_allocating_call(self):
        rng = np.random.default_rng(5)
        ds = FlowPairDataset(
            rng.uniform(size=(20, 6)), np.tile(np.eye(4), (5, 1))
        )
        want_x, want_c = ds.sample_batch(7, seed=99)
        bufs = (np.empty((7, 6)), np.empty((7, 4)))
        got_x, got_c = ds.sample_batch(7, seed=99, out=bufs)
        assert got_x is bufs[0] and got_c is bufs[1]
        np.testing.assert_array_equal(got_x, want_x)
        np.testing.assert_array_equal(got_c, want_c)
