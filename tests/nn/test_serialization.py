"""Tests for repro.nn.serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.serialization import load_weights, save_weights


def make_net(seed=0, hidden=8):
    return Sequential([Dense(hidden, "relu"), Dense(2)], input_dim=4, seed=seed)


class TestRoundTrip:
    def test_save_load_preserves_predictions(self, tmp_path):
        net = make_net(seed=1)
        path = tmp_path / "weights.npz"
        save_weights(net, path)
        other = make_net(seed=2)
        x = np.random.default_rng(0).normal(size=(5, 4))
        assert not np.allclose(net.predict(x), other.predict(x))
        load_weights(other, path)
        np.testing.assert_allclose(net.predict(x), other.predict(x))

    def test_creates_parent_dirs(self, tmp_path):
        net = make_net()
        path = tmp_path / "deep" / "dir" / "w.npz"
        save_weights(net, path)
        assert path.exists()


class TestFailures:
    def test_unbuilt_network_cannot_save(self, tmp_path):
        net = Sequential([Dense(3)])
        with pytest.raises(SerializationError):
            save_weights(net, tmp_path / "w.npz")

    def test_missing_file(self, tmp_path):
        net = make_net()
        with pytest.raises(SerializationError, match="no such"):
            load_weights(net, tmp_path / "absent.npz")

    def test_architecture_mismatch(self, tmp_path):
        net = make_net(hidden=8)
        path = tmp_path / "w.npz"
        save_weights(net, path)
        wrong = make_net(hidden=16)
        with pytest.raises(SerializationError, match="mismatch"):
            load_weights(wrong, path)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(SerializationError):
            load_weights(make_net(), path)
