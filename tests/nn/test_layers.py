"""Tests for repro.nn.layers: shapes, gradients, and modes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import ActivationLayer, BatchNorm, Dense, Dropout


def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_build_allocates_correct_shapes(self):
        layer = Dense(7)
        out_dim = layer.build(4, rng())
        assert out_dim == 7
        assert layer.W.shape == (4, 7)
        assert layer.b.shape == (7,)

    def test_forward_linear(self):
        layer = Dense(3, kernel_init="zeros", use_bias=True)
        layer.build(2, rng())
        layer.W[...] = np.array([[1.0, 0.0, 2.0], [0.0, 1.0, -1.0]])
        layer.b[...] = np.array([0.5, 0.0, 0.0])
        y = layer.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(y, [[1.5, 2.0, 0.0]])

    def test_no_bias(self):
        layer = Dense(3, use_bias=False)
        layer.build(2, rng())
        assert "b" not in layer.parameters()

    def test_rejects_wrong_input_width(self):
        layer = Dense(3)
        layer.build(4, rng())
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5)))

    def test_use_before_build_raises(self):
        with pytest.raises(ConfigurationError):
            Dense(3).forward(np.zeros((1, 2)))

    def test_rejects_nonpositive_units(self):
        with pytest.raises(ConfigurationError):
            Dense(0)

    def test_gradient_shapes_match_params(self):
        layer = Dense(5, "relu")
        layer.build(3, rng())
        y = layer.forward(rng().normal(size=(8, 3)))
        layer.backward(np.ones_like(y))
        grads = layer.gradients()
        assert grads["W"].shape == layer.W.shape
        assert grads["b"].shape == layer.b.shape

    def test_backward_gradient_numerically(self):
        layer = Dense(4, "tanh")
        layer.build(3, rng())
        x = rng().normal(size=(5, 3))

        def loss(xv):
            return float(np.sum(layer.forward(xv) ** 2)) / 2

        y = layer.forward(x)
        analytic = layer.backward(y)  # dL/dx for L = sum(y^2)/2
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in np.ndindex(*x.shape):
            xp = x.copy(); xp[i] += eps
            xm = x.copy(); xm[i] -= eps
            numeric[i] = (loss(xp) - loss(xm)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestActivationLayer:
    def test_forward_backward(self):
        layer = ActivationLayer("relu")
        layer.build(3, rng())
        x = np.array([[-1.0, 0.5, 2.0]])
        y = layer.forward(x)
        np.testing.assert_array_equal(y, [[0.0, 0.5, 2.0]])
        g = layer.backward(np.ones_like(y))
        np.testing.assert_array_equal(g, [[0.0, 1.0, 1.0]])

    def test_no_parameters(self):
        layer = ActivationLayer("tanh")
        assert layer.parameters() == {}


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.build(10, rng())
        x = rng().normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_and_scales(self):
        layer = Dropout(0.5, seed=0)
        layer.build(1000, rng())
        x = np.ones((1, 1000))
        y = layer.forward(x, training=True)
        kept = y != 0
        # Kept units are scaled by 1/keep.
        np.testing.assert_allclose(y[kept], 2.0)
        assert 0.35 < kept.mean() < 0.65

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        layer.build(50, rng())
        x = np.ones((2, 50))
        y = layer.forward(x, training=True)
        g = layer.backward(np.ones_like(y))
        np.testing.assert_array_equal((g != 0), (y != 0))

    def test_zero_rate_noop(self):
        layer = Dropout(0.0)
        layer.build(5, rng())
        x = rng().normal(size=(3, 5))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_rejects_rate_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = BatchNorm()
        layer.build(4, rng())
        x = rng().normal(3.0, 2.0, size=(64, 4))
        y = layer.forward(x, training=True)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_converge(self):
        layer = BatchNorm(momentum=0.5)
        layer.build(2, rng())
        x = rng().normal(5.0, 1.0, size=(256, 2))
        for _ in range(30):
            layer.forward(x, training=True)
        assert np.all(np.abs(layer.running_mean - 5.0) < 0.3)

    def test_inference_uses_running_stats(self):
        layer = BatchNorm()
        layer.build(2, rng())
        x = rng().normal(size=(32, 2))
        for _ in range(10):
            layer.forward(x, training=True)
        single = layer.forward(x[:1], training=False)
        assert single.shape == (1, 2)

    def test_backward_gradient_numerically(self):
        layer = BatchNorm()
        layer.build(3, rng())
        x = rng().normal(size=(6, 3))

        def loss(xv):
            return float(np.sum(layer.forward(xv, training=True) ** 2)) / 2

        y = layer.forward(x, training=True)
        analytic = layer.backward(y)
        eps = 1e-5
        numeric = np.zeros_like(x)
        for i in np.ndindex(*x.shape):
            xp = x.copy(); xp[i] += eps
            xm = x.copy(); xm[i] -= eps
            numeric[i] = (loss(xp) - loss(xm)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            BatchNorm(momentum=1.0)
