"""Tests for repro.nn.losses: values, gradients, GAN objectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.nn.losses import (
    BinaryCrossEntropy,
    GeneratorLossMinimax,
    GeneratorLossNonSaturating,
    MeanAbsoluteError,
    MeanSquaredError,
    discriminator_loss,
    get_loss,
)


def numeric_gradient(loss, pred, target, eps=1e-7):
    grad = np.zeros_like(pred)
    for i in np.ndindex(*pred.shape):
        p_plus = pred.copy(); p_plus[i] += eps
        p_minus = pred.copy(); p_minus[i] -= eps
        grad[i] = (loss.value(p_plus, target) - loss.value(p_minus, target)) / (2 * eps)
    return grad


class TestMSE:
    def test_zero_at_perfect(self):
        x = np.array([[1.0, 2.0]])
        assert MeanSquaredError().value(x, x) == 0.0

    def test_known_value(self):
        pred = np.array([[0.0, 2.0]])
        target = np.array([[1.0, 0.0]])
        assert MeanSquaredError().value(pred, target) == pytest.approx(2.5)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss = MeanSquaredError()
        np.testing.assert_allclose(
            loss.gradient(pred, target), numeric_gradient(loss, pred, target), atol=1e-6
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().value(np.zeros((2, 2)), np.zeros((2, 3)))


class TestMAE:
    def test_known_value(self):
        pred = np.array([[1.0, -1.0]])
        target = np.array([[0.0, 0.0]])
        assert MeanAbsoluteError().value(pred, target) == pytest.approx(1.0)

    def test_gradient_sign(self):
        pred = np.array([[2.0, -2.0]])
        target = np.array([[0.0, 0.0]])
        g = MeanAbsoluteError().gradient(pred, target)
        assert g[0, 0] > 0 and g[0, 1] < 0


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        pred = np.array([[0.999999, 0.000001]])
        target = np.array([[1.0, 0.0]])
        assert BinaryCrossEntropy().value(pred, target) < 1e-4

    def test_symmetric(self):
        loss = BinaryCrossEntropy()
        a = loss.value(np.array([[0.3]]), np.array([[1.0]]))
        b = loss.value(np.array([[0.7]]), np.array([[0.0]]))
        assert a == pytest.approx(b)

    def test_handles_exact_zero_one(self):
        loss = BinaryCrossEntropy()
        val = loss.value(np.array([[0.0, 1.0]]), np.array([[1.0, 0.0]]))
        assert np.isfinite(val)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(1)
        pred = rng.uniform(0.05, 0.95, size=(5, 2))
        target = (rng.random((5, 2)) > 0.5).astype(float)
        loss = BinaryCrossEntropy()
        np.testing.assert_allclose(
            loss.gradient(pred, target), numeric_gradient(loss, pred, target), atol=1e-5
        )

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_gradient_property(self, p, t):
        loss = BinaryCrossEntropy()
        pred = np.array([[p]])
        target = np.array([[float(t)]])
        np.testing.assert_allclose(
            loss.gradient(pred, target),
            numeric_gradient(loss, pred, target),
            atol=1e-4,
        )


class TestGeneratorLosses:
    def test_minimax_decreases_in_pred(self):
        loss = GeneratorLossMinimax()
        low = loss.value(np.array([[0.1]]))
        high = loss.value(np.array([[0.9]]))
        assert high < low  # Higher D(G) => lower log(1-D)

    def test_non_saturating_decreases_in_pred(self):
        loss = GeneratorLossNonSaturating()
        assert loss.value(np.array([[0.9]])) < loss.value(np.array([[0.1]]))

    def test_both_gradients_negative(self):
        # Both objectives improve when D(G(z)) grows, so d loss / d pred < 0.
        pred = np.array([[0.3], [0.6]])
        assert np.all(GeneratorLossMinimax().gradient(pred) < 0)
        assert np.all(GeneratorLossNonSaturating().gradient(pred) < 0)

    def test_non_saturating_stronger_gradient_when_d_wins(self):
        # At D(G)=0.01 (discriminator winning), the heuristic loss gives a
        # much larger magnitude gradient — its whole reason to exist.
        pred = np.array([[0.01]])
        g_mm = abs(GeneratorLossMinimax().gradient(pred)[0, 0])
        g_ns = abs(GeneratorLossNonSaturating().gradient(pred)[0, 0])
        assert g_ns > 10 * g_mm

    def test_gradients_numeric(self):
        pred = np.array([[0.2], [0.5], [0.8]])
        for loss in (GeneratorLossMinimax(), GeneratorLossNonSaturating()):
            numeric = np.zeros_like(pred)
            eps = 1e-7
            for i in np.ndindex(*pred.shape):
                pp = pred.copy(); pp[i] += eps
                pm = pred.copy(); pm[i] -= eps
                numeric[i] = (loss.value(pp) - loss.value(pm)) / (2 * eps)
            np.testing.assert_allclose(loss.gradient(pred), numeric, atol=1e-5)


class TestDiscriminatorLoss:
    def test_perfect_discriminator_low_loss(self):
        val = discriminator_loss(np.array([0.999]), np.array([0.001]))
        assert val < 0.01

    def test_fooled_discriminator_at_equilibrium(self):
        # D outputs 0.5 everywhere: loss = 2 ln 2.
        val = discriminator_loss(np.array([0.5]), np.array([0.5]))
        assert val == pytest.approx(2 * np.log(2), abs=1e-9)

    def test_worst_case_larger(self):
        worst = discriminator_loss(np.array([0.01]), np.array([0.99]))
        mid = discriminator_loss(np.array([0.5]), np.array([0.5]))
        assert worst > mid


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("bce"), BinaryCrossEntropy)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_loss("hinge")
