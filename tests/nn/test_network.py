"""Tests for repro.nn.network.Sequential."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.layers import BatchNorm, Dense, Dropout
from repro.nn.network import Sequential


def make_net(seed=0):
    return Sequential(
        [Dense(8, "tanh"), Dense(4, "relu"), Dense(2, "sigmoid")],
        input_dim=5,
        seed=seed,
    )


class TestConstruction:
    def test_requires_layers(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_rejects_non_layer(self):
        with pytest.raises(ConfigurationError):
            Sequential([Dense(3), "not-a-layer"])

    def test_lazy_build(self):
        net = Sequential([Dense(3)])
        assert not net.built
        net.build(4, seed=0)
        assert net.built
        assert net.output_dim == 3

    def test_forward_before_build_raises(self):
        with pytest.raises(NotFittedError):
            Sequential([Dense(3)]).forward(np.zeros((1, 4)))

    def test_output_dim_chains(self):
        net = make_net()
        assert net.input_dim == 5
        assert net.output_dim == 2


class TestForward:
    def test_shapes(self):
        net = make_net()
        y = net.forward(np.zeros((7, 5)))
        assert y.shape == (7, 2)

    def test_1d_input_promoted(self):
        net = make_net()
        y = net.forward(np.zeros(5))
        assert y.shape == (1, 2)

    def test_callable_alias(self):
        net = make_net()
        x = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_array_equal(net(x), net.forward(x))

    def test_predict_is_inference_mode(self):
        net = Sequential([Dense(8, "relu"), Dropout(0.9, seed=0), Dense(2)],
                         input_dim=4, seed=0)
        x = np.random.default_rng(1).normal(size=(5, 4))
        a = net.predict(x)
        b = net.predict(x)
        np.testing.assert_array_equal(a, b)  # Dropout off => deterministic.


class TestWeights:
    def test_num_parameters(self):
        net = make_net()
        # (5*8+8) + (8*4+4) + (4*2+2) = 48+36+10
        assert net.num_parameters() == 94

    def test_get_set_roundtrip(self):
        net = make_net(seed=1)
        weights = net.get_weights()
        net2 = make_net(seed=2)
        x = np.random.default_rng(3).normal(size=(4, 5))
        assert not np.allclose(net.predict(x), net2.predict(x))
        net2.set_weights(weights)
        np.testing.assert_allclose(net.predict(x), net2.predict(x))

    def test_set_weights_rejects_missing_key(self):
        net = make_net()
        weights = net.get_weights()
        weights.pop("0.W")
        with pytest.raises(ConfigurationError, match="missing"):
            net.set_weights(weights)

    def test_set_weights_rejects_bad_shape(self):
        net = make_net()
        weights = net.get_weights()
        weights["0.W"] = np.zeros((2, 2))
        with pytest.raises(ConfigurationError, match="shape"):
            net.set_weights(weights)

    def test_clone_is_independent(self):
        net = make_net()
        twin = net.clone()
        x = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(net.predict(x), twin.predict(x))
        twin.layers[0].W += 1.0
        assert not np.allclose(net.predict(x), twin.predict(x))


class TestFit:
    def test_loss_decreases_on_regression(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 3))
        w_true = np.array([[1.0], [-2.0], [0.5]])
        y = x @ w_true
        net = Sequential([Dense(16, "tanh"), Dense(1)], input_dim=3, seed=0)
        history = net.fit(x, y, loss="mse", epochs=40, seed=1, learning_rate=0.01)
        assert history[-1] < history[0] * 0.2

    def test_binary_classification_learns(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(float)
        net = Sequential([Dense(8, "tanh"), Dense(1, "sigmoid")], input_dim=2, seed=0)
        net.fit(x, y, loss="bce", epochs=60, seed=1, learning_rate=0.05)
        acc = ((net.predict(x).ravel() > 0.5) == (y > 0.5)).mean()
        assert acc > 0.9

    def test_history_length(self):
        net = make_net()
        x = np.random.default_rng(0).normal(size=(16, 5))
        y = np.zeros((16, 2))
        history = net.fit(x, y, epochs=7, seed=0)
        assert len(history) == 7

    def test_batchnorm_trains(self):
        net = Sequential(
            [Dense(8, "relu"), BatchNorm(), Dense(1, "sigmoid")],
            input_dim=2,
            seed=0,
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 2))
        y = (x[:, 0] > 0).astype(float)
        history = net.fit(x, y, loss="bce", epochs=30, seed=2, learning_rate=0.02)
        assert history[-1] < history[0]
