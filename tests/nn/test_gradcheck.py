"""Property-based gradient verification of whole networks.

The single most important correctness property of the NN substrate:
analytic backprop must match central-difference numerics for arbitrary
layer stacks.  Hypothesis samples architectures; the checker verifies
both input gradients and every parameter gradient.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.gradcheck import (
    check_input_gradient,
    check_parameter_gradients,
    numerical_gradient,
)
from repro.nn.layers import ActivationLayer, BatchNorm, Dense
from repro.nn.network import Sequential

TOL = 1e-6

# Property tests use smooth activations only: ReLU-family kinks make
# central differences disagree with the (correct) subgradient whenever a
# random pre-activation lands within eps of zero.  ReLU/LeakyReLU get
# dedicated fixed-seed coverage in TestFixedArchitectures instead.
activations = st.sampled_from(["tanh", "sigmoid", "softplus", "elu", None])
widths = st.integers(min_value=1, max_value=6)


class TestNumericalGradient:
    def test_quadratic(self):
        grad = numerical_gradient(lambda v: float(np.sum(v**2)), np.array([1.0, -2.0]))
        np.testing.assert_allclose(grad, [2.0, -4.0], atol=1e-5)


class TestFixedArchitectures:
    @pytest.mark.parametrize("loss", ["mse", "bce"])
    def test_two_layer(self, loss):
        net = Sequential([Dense(6, "tanh"), Dense(3, "sigmoid")], input_dim=4, seed=0)
        x = np.random.default_rng(0).normal(size=(5, 4))
        target = np.random.default_rng(1).uniform(0.1, 0.9, size=(5, 3))
        assert check_input_gradient(net, x, loss=loss, target=target) < TOL
        errs = check_parameter_gradients(net, x, loss=loss, target=target)
        assert max(errs.values()) < TOL

    def test_relu_leaky_relu_stack(self):
        net = Sequential(
            [Dense(6, "relu"), Dense(4, "leaky_relu"), Dense(3, "sigmoid")],
            input_dim=4,
            seed=0,
        )
        x = np.random.default_rng(0).normal(size=(5, 4))
        target = np.random.default_rng(1).uniform(0.1, 0.9, size=(5, 3))
        assert check_input_gradient(net, x, loss="mse", target=target) < TOL
        errs = check_parameter_gradients(net, x, loss="mse", target=target)
        assert max(errs.values()) < TOL

    def test_with_batchnorm_inference(self):
        net = Sequential([Dense(5, "relu"), BatchNorm(), Dense(2)], input_dim=3, seed=0)
        # Warm running stats so inference-mode forward is non-trivial.
        net.forward(np.random.default_rng(2).normal(size=(32, 3)), training=True)
        x = np.random.default_rng(3).normal(size=(4, 3))
        assert check_input_gradient(net, x) < TOL

    def test_activation_layer_stack(self):
        net = Sequential(
            [Dense(4), ActivationLayer("softplus"), Dense(2, "tanh")],
            input_dim=3,
            seed=1,
        )
        x = np.random.default_rng(4).normal(size=(3, 3))
        assert check_input_gradient(net, x) < TOL


class TestPropertyBased:
    @given(
        act1=activations,
        act2=activations,
        w1=widths,
        w2=widths,
        in_dim=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_mlp_gradients(self, act1, act2, w1, w2, in_dim, seed):
        net = Sequential(
            [Dense(w1, act1), Dense(w2, act2), Dense(2, "sigmoid")],
            input_dim=in_dim,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        # Keep inputs away from ReLU kinks by nudging magnitudes.
        x = rng.normal(size=(3, in_dim)) + 0.05
        target = rng.uniform(0.2, 0.8, size=(3, 2))
        assert check_input_gradient(net, x, loss="mse", target=target) < 1e-5
        errs = check_parameter_gradients(net, x, loss="mse", target=target)
        assert max(errs.values()) < 1e-5
