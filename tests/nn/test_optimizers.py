"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense
from repro.nn.optimizers import SGD, Adam, RMSProp, get_optimizer


class _Quadratic:
    """A fake 'layer' with a single parameter and loss ||w - target||^2."""

    def __init__(self, w0, target):
        self.w = np.array(w0, dtype=float)
        self.target = np.array(target, dtype=float)
        self.grad = None

    def compute_grad(self):
        self.grad = 2.0 * (self.w - self.target)

    def parameters(self):
        return {"w": self.w}

    def gradients(self):
        return {"w": self.grad}


def optimize(opt, steps=200, w0=(5.0, -3.0), target=(1.0, 2.0)):
    layer = _Quadratic(w0, target)
    for _ in range(steps):
        layer.compute_grad()
        opt.step([layer])
    return layer


class TestConvergence:
    @pytest.mark.parametrize(
        "opt",
        [SGD(0.05), SGD(0.05, momentum=0.9), SGD(0.05, momentum=0.9, nesterov=True),
         RMSProp(0.05), Adam(0.1)],
        ids=["sgd", "momentum", "nesterov", "rmsprop", "adam"],
    )
    def test_converges_on_quadratic(self, opt):
        layer = optimize(opt)
        np.testing.assert_allclose(layer.w, layer.target, atol=1e-2)

    def test_sgd_single_step_exact(self):
        layer = _Quadratic([2.0], [0.0])
        layer.compute_grad()  # grad = 4
        SGD(0.25).step([layer])
        assert layer.w[0] == pytest.approx(1.0)


class TestState:
    def test_adam_bias_correction_first_step(self):
        # First Adam step should be ~lr in the gradient direction.
        layer = _Quadratic([10.0], [0.0])
        layer.compute_grad()
        Adam(0.5).step([layer])
        assert layer.w[0] == pytest.approx(9.5, abs=1e-6)

    def test_reset_clears_momentum(self):
        opt = SGD(0.1, momentum=0.9)
        layer = _Quadratic([1.0], [0.0])
        layer.compute_grad()
        opt.step([layer])
        assert opt._state
        opt.reset()
        assert not opt._state
        assert opt.iterations == 0

    def test_iteration_counter(self):
        opt = Adam(0.01)
        layer = _Quadratic([1.0], [0.0])
        for _ in range(5):
            layer.compute_grad()
            opt.step([layer])
        assert opt.iterations == 5

    def test_step_skips_layers_without_grads(self):
        layer = Dense(3)
        layer.build(2, np.random.default_rng(0))
        w_before = layer.W.copy()
        Adam(0.1).step([layer])  # No backward ran: gradients are None.
        np.testing.assert_array_equal(layer.W, w_before)

    def test_updates_in_place(self):
        layer = _Quadratic([1.0], [0.0])
        ref = layer.w
        layer.compute_grad()
        Adam(0.1).step([layer])
        assert ref is layer.w  # Identity preserved for serialization.


class TestValidation:
    def test_rejects_nonpositive_lr(self):
        for cls in (SGD, RMSProp, Adam):
            with pytest.raises(ConfigurationError):
                cls(learning_rate=0.0)

    def test_sgd_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1, momentum=1.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1, momentum=0.0, nesterov=True)

    def test_adam_rejects_bad_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(0.1, beta2=-0.1)


class TestRegistry:
    def test_lookup_with_kwargs(self):
        opt = get_optimizer("adam", learning_rate=0.123)
        assert isinstance(opt, Adam)
        assert opt.learning_rate == 0.123

    def test_instance_passthrough(self):
        opt = SGD(0.01)
        assert get_optimizer(opt) is opt

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_optimizer("lion")
