"""Tests for repro.nn.activations, including derivative correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.nn.activations import (
    ELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [Identity(), ReLU(), LeakyReLU(0.2), Sigmoid(), Tanh(), Softplus(), ELU()]


def numeric_derivative(act, x, eps=1e-6):
    return (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)


class TestForwardValues:
    def test_relu_clamps_negative(self):
        x = np.array([-2.0, -0.1, 0.0, 0.5, 3.0])
        np.testing.assert_array_equal(ReLU().forward(x), [0, 0, 0, 0.5, 3.0])

    def test_leaky_relu_scales_negative(self):
        x = np.array([-2.0, 1.0])
        np.testing.assert_allclose(LeakyReLU(0.1).forward(x), [-0.2, 1.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        y = Sigmoid().forward(x)
        assert np.all((y >= 0) & (y <= 1))
        np.testing.assert_allclose(y + y[::-1], 1.0, atol=1e-12)

    def test_sigmoid_extreme_inputs_finite(self):
        y = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 1.0], atol=1e-12)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_softplus_positive(self):
        x = np.linspace(-20, 20, 41)
        y = Softplus().forward(x)
        assert np.all(y > 0)
        # softplus(x) ~= x for large x
        assert abs(y[-1] - 20.0) < 1e-6

    def test_elu_continuous_at_zero(self):
        act = ELU(1.0)
        assert abs(act.forward(np.array([1e-9]))[0] - act.forward(np.array([-1e-9]))[0]) < 1e-6


class TestDerivatives:
    @pytest.mark.parametrize("act", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_matches_numeric(self, act):
        # Avoid the ReLU kink at exactly 0.
        x = np.array([-2.0, -0.7, -0.01, 0.01, 0.4, 1.7, 3.0])
        y = act.forward(x)
        analytic = act.backward(x, y)
        numeric = numeric_derivative(act, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    @given(st.floats(min_value=-5, max_value=5).filter(lambda v: abs(v) > 1e-3))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_derivative_property(self, v):
        x = np.array([v])
        act = Sigmoid()
        y = act.forward(x)
        np.testing.assert_allclose(
            act.backward(x, y), numeric_derivative(act, x), atol=1e-6
        )


class TestConfig:
    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ConfigurationError):
            LeakyReLU(-0.1)

    def test_elu_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            ELU(0.0)


class TestRegistry:
    def test_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("linear"), Identity)

    def test_instance_passthrough(self):
        act = LeakyReLU(0.3)
        assert get_activation(act) is act

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown activation"):
            get_activation("swishy")
