"""Tests for repro.nn.schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedules import (
    ConstantSchedule,
    CosineDecay,
    ExponentialDecay,
    ScheduledOptimizer,
    StepDecay,
    WarmupSchedule,
    attach_schedule,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule()
        assert s(0) == 1.0
        assert s(10_000) == 1.0

    def test_step_decay(self):
        s = StepDecay(every=10, factor=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_exponential(self):
        s = ExponentialDecay(0.9)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.81)

    def test_cosine_endpoints(self):
        s = CosineDecay(total=100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(200) == pytest.approx(0.1)  # Clamped past total.
        assert s(50) == pytest.approx(0.55)

    def test_warmup(self):
        s = WarmupSchedule(warmup=4, base=ConstantSchedule())
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_warmup_composes(self):
        s = WarmupSchedule(warmup=2, base=StepDecay(every=5, factor=0.5))
        assert s(2) == 1.0       # First post-warmup step.
        assert s(7) == 0.5       # 5 steps after warmup.

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: StepDecay(0),
            lambda: StepDecay(5, factor=0.0),
            lambda: ExponentialDecay(0.0),
            lambda: CosineDecay(0),
            lambda: CosineDecay(10, floor=0.0),
            lambda: WarmupSchedule(0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            bad()


class TestScheduledOptimizer:
    def test_rate_follows_schedule(self):
        opt = SGD(0.1)
        sched = attach_schedule(opt, StepDecay(every=1, factor=0.5))
        layer = Dense(2)
        layer.build(2, np.random.default_rng(0))
        layer._x = np.ones((1, 2))  # Fake forward state.
        # Manually drive: first step multiplier 0.5^0=1, second 0.5.
        assert sched.current_rate == pytest.approx(0.1)
        layer.dW = np.ones_like(layer.W)
        layer.db = np.ones_like(layer.b)
        sched.step([layer])
        assert sched.current_rate == pytest.approx(0.05)

    def test_base_rate_restored_after_step(self):
        opt = Adam(0.01)
        sched = attach_schedule(opt, ExponentialDecay(0.5))
        layer = Dense(2)
        layer.build(2, np.random.default_rng(0))
        layer.dW = np.ones_like(layer.W)
        layer.db = np.ones_like(layer.b)
        sched.step([layer])
        assert opt.learning_rate == 0.01

    def test_training_with_schedule_converges(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        y = x @ np.array([[1.0], [2.0], [-1.0]])
        net = Sequential([Dense(1)], input_dim=3, seed=0)
        from repro.nn.losses import MeanSquaredError

        loss = MeanSquaredError()
        sched = attach_schedule(SGD(0.1), CosineDecay(total=200))
        for _ in range(200):
            pred = net.forward(x, training=True)
            net.backward(loss.gradient(pred, y))
            sched.step(net.layers)
        assert loss.value(net.forward(x), y) < 0.01

    def test_usable_as_cgan_optimizer(self, toy_dataset):
        from repro.gan import ConditionalGAN

        cgan = ConditionalGAN(
            4,
            2,
            noise_dim=4,
            seed=0,
            g_optimizer=attach_schedule(Adam(2e-3), CosineDecay(total=100)),
            d_optimizer=attach_schedule(Adam(2e-3), CosineDecay(total=100)),
        )
        hist = cgan.train(toy_dataset, iterations=60)
        assert np.all(np.isfinite(hist.d_loss))

    def test_rejects_non_optimizer(self):
        with pytest.raises(ConfigurationError):
            attach_schedule("adam", ConstantSchedule())
        with pytest.raises(ConfigurationError):
            attach_schedule(SGD(0.1), "cosine")
