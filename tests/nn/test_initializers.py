"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    RandomNormal,
    RandomUniform,
    Zeros,
    get_initializer,
)


class TestZerosAndConstant:
    def test_zeros(self):
        w = Zeros()((3, 4), 0)
        assert w.shape == (3, 4)
        assert np.all(w == 0.0)

    def test_constant(self):
        w = Constant(2.5)((5,), 0)
        assert np.all(w == 2.5)


class TestRandomInits:
    def test_normal_std(self):
        w = RandomNormal(std=0.5)((200, 200), 0)
        assert abs(w.std() - 0.5) < 0.02
        assert abs(w.mean()) < 0.02

    def test_normal_rejects_bad_std(self):
        with pytest.raises(ConfigurationError):
            RandomNormal(std=0.0)

    def test_uniform_bounds(self):
        w = RandomUniform(-0.1, 0.3)((100, 100), 0)
        assert w.min() >= -0.1
        assert w.max() < 0.3

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomUniform(1.0, -1.0)


class TestVarianceScaling:
    @pytest.mark.parametrize("cls", [GlorotUniform, GlorotNormal])
    def test_glorot_variance(self, cls):
        fan_in, fan_out = 50, 150
        w = cls()((fan_in, fan_out), 12)
        expected_var = 2.0 / (fan_in + fan_out)
        assert abs(w.var() - expected_var) / expected_var < 0.15

    @pytest.mark.parametrize("cls", [HeUniform, HeNormal])
    def test_he_variance(self, cls):
        fan_in = 80
        w = cls()((fan_in, 120), 12)
        expected_var = 2.0 / fan_in
        assert abs(w.var() - expected_var) / expected_var < 0.15

    def test_bias_shape_uses_length_as_fan(self):
        w = GlorotUniform()((64,), 3)
        assert w.shape == (64,)
        limit = np.sqrt(6.0 / (64 + 64))
        assert np.all(np.abs(w) <= limit)


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = GlorotUniform()((10, 10), 42)
        b = GlorotUniform()((10, 10), 42)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_weights(self):
        a = GlorotUniform()((10, 10), 42)
        b = GlorotUniform()((10, 10), 43)
        assert not np.array_equal(a, b)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_initializer("he_uniform"), HeUniform)
        assert isinstance(get_initializer("zeros"), Zeros)

    def test_passthrough_instance(self):
        init = Constant(1.0)
        assert get_initializer(init) is init

    def test_class_spec(self):
        assert isinstance(get_initializer(GlorotNormal), GlorotNormal)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown initializer"):
            get_initializer("nope")

    def test_garbage_spec_raises(self):
        with pytest.raises(ConfigurationError):
            get_initializer(123)
