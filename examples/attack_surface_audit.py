"""Structural security audit of the printer's CPPS graph.

Before training any CGAN, GAN-Sec's graph (Algorithm 1) already answers
structural questions from paper Section II:

* what can a malicious G-code stream reach? (attack surface)
* which components leak into unintentional emissions? (exposure)
* "Can F9 be used to monitor any attacks in the integrity of the flow
  path from node C1 to P5?" (monitoring coverage)
* which flows cross the cyber/physical boundary? (where to put guards)

plus the physical damage a kinetic-cyber attack causes, in millimeters.

Run:  python examples/attack_surface_audit.py
"""

from repro.graph import (
    attack_surface,
    build_graph,
    cross_domain_cut,
    emission_exposure,
    monitoring_coverage,
)
from repro.manufacturing import (
    GCodeProgram,
    MotionPlanner,
    geometric_damage_report,
    printer_architecture,
)


def main():
    arch = printer_architecture()
    graph = build_graph(arch)

    print("=== attack surface of the external G-code interface (C4) ===")
    surface = attack_surface(graph, "C4")
    for name in sorted(surface):
        comp = arch.component(name)
        print(f"  {comp}")
    print(f"  -> {len(surface)} of {len(arch.component_names()) - 1} "
          "components are kinetic-cyber reachable")

    print("\n=== side-channel exposure (who leaks into emissions) ===")
    exposure = emission_exposure(graph)
    for name in sorted(exposure):
        flows = exposure[name]
        if flows:
            print(f"  {name}: observable via {', '.join(sorted(flows))}")

    print("\n=== the paper's monitoring question ===")
    # Can the environment-facing emissions monitor the C1 -> P5 path?
    report = monitoring_coverage(graph, "C1", "P5", ["F17"])
    print(" ", report.summary())
    report = monitoring_coverage(graph, "C1", "P2", ["F19"])
    print(" ", report.summary(), "(thermal monitor cannot see motion!)")

    print("\n=== cross-domain cut (guard placement candidates) ===")
    for flow in cross_domain_cut(graph):
        print(f"  {flow}")

    print("\n=== kinetic-cyber damage of an axis-swap attack ===")
    claimed = MotionPlanner().plan(
        GCodeProgram.from_text("G90\nG1 F1200 X25\nG1 Y15\nG1 X0\nG1 Y0")
    )
    executed = MotionPlanner().plan(
        # The attacker swapped X and Y in transit.
        GCodeProgram.from_text("G90\nG1 F1200 Y25\nG1 X15\nG1 Y0\nG1 X0")
    )
    damage = geometric_damage_report(claimed, executed)
    for key, value in damage.items():
        print(f"  {key}: {value:.2f}")
    print(
        "\nThe part geometry is off by "
        f"{damage['hausdorff_mm']:.1f} mm worst-case - physical damage"
        "\ncaused entirely from the cyber domain, which the acoustic"
        "\nside-channel detector (see attack_detection.py) can flag."
    )


if __name__ == "__main__":
    main()
