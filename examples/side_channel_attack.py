"""Confidentiality attack: reconstruct secret G-code from sound.

Scenario (paper Section IV-D, confidentiality): an attacker placed a
contact microphone on the printer frame, trained a CGAN on calibration
recordings, and now listens while the victim prints a *secret* object.
Using maximum-likelihood inference over the CGAN's per-condition
densities, the attacker reconstructs the sequence of motor movements —
the geometry skeleton of the part.

Run:  python examples/side_channel_attack.py
"""

import numpy as np

from repro.flows.encoding import condition_label
from repro.gan import ConditionalGAN
from repro.manufacturing import (
    Printer3D,
    build_dataset,
    collect_segments,
    random_single_motor_sequence,
    record_case_study_dataset,
)
from repro.security import SideChannelAttacker

SEED = 7


def main():
    # --- Phase 1: the attacker profiles the machine -------------------
    print("[attacker] recording calibration traces ...")
    train_ds, extractor, encoder, _runs = record_case_study_dataset(
        n_moves_per_axis=30, seed=SEED
    )
    print(f"[attacker] training CGAN on {len(train_ds)} labeled segments ...")
    cgan = ConditionalGAN(
        train_ds.feature_dim, train_ds.condition_dim, seed=SEED
    )
    cgan.train(train_ds, iterations=2000, batch_size=32)

    # --- Phase 2: the victim prints a secret object -------------------
    printer = Printer3D(sample_rate=12000.0, seed=900)
    secret_program = random_single_motor_sequence(20, seed=901, name="secret")
    print(f"\n[victim] printing secret object ({len(secret_program)} commands)")
    run = printer.run(secret_program, seed=902)

    # --- Phase 3: the attacker listens and infers ---------------------
    segments = collect_segments([run])
    observed = build_dataset(segments, extractor, encoder, fit_extractor=False)
    attacker = SideChannelAttacker(
        cgan, train_ds.unique_conditions(), h=0.2, g_size=250, seed=SEED
    ).fit()

    true_seq = [condition_label(s.active_axes) for s in segments]
    pred_idx = attacker.infer(observed.features)
    labels = [condition_label(encoder.decode(c)) for c in attacker.conditions]
    pred_seq = [labels[i] for i in pred_idx]

    print("\nmove | true motor | inferred | verdict")
    print("-" * 44)
    hits = 0
    for i, (t, p) in enumerate(zip(true_seq, pred_seq)):
        ok = t == p
        hits += ok
        print(f"{i:4d} | {t:10s} | {p:8s} | {'ok' if ok else 'MISS'}")
    report = attacker.evaluate(observed)
    print("-" * 44)
    print(
        f"reconstruction accuracy: {report.accuracy:.1%} "
        f"({report.leakage_ratio:.1f}x better than guessing)"
    )
    print("\nconfusion matrix (rows true, cols predicted):")
    print(np.array2string(report.confusion))

    # --- Phase 4: exploit sequential structure (Viterbi smoothing) ----
    # The attacker also knows typical G-code statistics (motor usage is
    # sticky); a first-order Markov prior over conditions sharpens the
    # reconstruction of noisy segments.
    from repro.security import SequenceAttacker, TransitionModel

    from repro.manufacturing import staircase_program

    label_index = {lbl: i for i, lbl in enumerate(labels)}
    # Real parts are structured: perimeters alternate X/Y and layer
    # changes (Z) are periodic.  Fit the Markov prior on similar parts.
    transition = TransitionModel(len(labels), smoothing=0.5)
    for i, layers in enumerate((4, 6, 8)):
        calib = staircase_program(layers, step=8.0 + 2 * i)
        calib_run = printer.run(calib, seed=400 + i)
        seq = [
            label_index[condition_label(s.active_axes)]
            for s in collect_segments([calib_run])
        ]
        transition.update(seq)

    # The structured secret: another staircase part.
    secret2 = staircase_program(7, step=9.0, name="secret-part")
    run2 = printer.run(secret2, seed=903)
    segments2 = collect_segments([run2])
    observed2 = build_dataset(segments2, extractor, encoder, fit_extractor=False)
    true_idx2 = [
        label_index[condition_label(s.active_axes)] for s in segments2
    ]
    indep_acc2 = float(
        (attacker.infer(observed2.features) == np.asarray(true_idx2)).mean()
    )
    seq_attacker = SequenceAttacker(attacker, transition)
    seq_acc2 = seq_attacker.sequence_accuracy(observed2.features, true_idx2)
    print(
        "\non a *structured* secret part (staircase, periodic X/Y/Z):"
        f"\n  independent per-segment inference: {indep_acc2:.1%}"
        f"\n  with Markov sequence smoothing (Viterbi): {seq_acc2:.1%}"
    )
    print(
        "\nConclusion: the acoustic energy flow to the environment leaks"
        "\nthe G/M-code signal flow - a confidentiality violation GAN-Sec"
        "\nquantifies at design time."
    )


if __name__ == "__main__":
    main()
