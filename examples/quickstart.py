"""GAN-Sec quickstart: the whole pipeline in ~60 lines.

Simulates the paper's additive-manufacturing case study end to end:

1. record acoustic traces from the simulated 3D printer,
2. run Algorithm 1 on the printer's CPPS architecture,
3. train a conditional GAN per covered flow pair (Algorithm 2),
4. run the security analysis (Algorithm 3) and print the report.

Run:  python examples/quickstart.py
"""

from repro.manufacturing import (
    GCODE_FLOW,
    printer_architecture,
    record_case_study_dataset,
)
from repro.pipeline import CGANConfig, GANSec, GANSecConfig

SEED = 7


def main():
    # 1. Record data on the simulated printer: single-motor calibration
    #    programs for X, Y, Z, CWT-featureized into 100 bins.
    print("recording simulated printer traces ...")
    dataset, extractor, encoder, runs = record_case_study_dataset(
        n_moves_per_axis=35, seed=SEED
    )
    print(f"  {dataset} from {sum(len(r.segments) for r in runs)} segments")

    # 2-4. The GANSec facade runs Algorithm 1 (graph + flow pairs),
    #    Algorithm 2 (CGAN per pair), and Algorithm 3 (likelihood metrics).
    architecture = printer_architecture()
    pipeline = GANSec(
        architecture,
        GANSecConfig(cgan=CGANConfig(iterations=2500), seed=SEED),
    )
    # The case study models the frame's acoustic emission (F18)
    # conditioned on the incoming G/M-code signal flow (F1).
    data = {("F18", GCODE_FLOW): dataset}
    reports = pipeline.run(data)

    print()
    print(pipeline.summary())
    print()
    report = reports[("F18", GCODE_FLOW)]
    print(report.to_text(condition_names=["Cond1 (X)", "Cond2 (Y)", "Cond3 (Z)"]))


if __name__ == "__main__":
    main()
