"""True multi-pair GAN-Sec: one CGAN per monitored emission flow.

The paper's Algorithm 1 lists five monitored acoustic emissions (from
the X/Y/Z motors P2-P4, the extruder P5, and the frame P8, each into the
environment P9).  This example simulates one sensor per emission —
each motor's microphone hears its own motor at full strength and the
rest as structure-borne crosstalk — and runs the full GANSec pipeline
over all five flow pairs at once, producing a per-emission leakage
ranking a designer can act on ("which sensor placement is the most
dangerous if an attacker gets it?").

Run:  python examples/multi_emission_analysis.py
"""

from repro.manufacturing import (
    MONITORED_EMISSIONS,
    printer_architecture,
    record_per_emission_datasets,
)
from repro.pipeline import CGANConfig, GANSec, GANSecConfig
from repro.utils.tables import format_table

SEED = 21

EMISSION_LABELS = {
    "F14": "P2 (X motor) mic",
    "F15": "P3 (Y motor) mic",
    "F16": "P4 (Z motor) mic",
    "F17": "P5 (extruder) mic",
    "F18": "P8 (frame) mic",
}


def main():
    print("recording through 5 virtual emission sensors ...")
    data, _extractors = record_per_emission_datasets(
        n_moves_per_axis=20, crosstalk=0.15, seed=SEED
    )
    pipeline = GANSec(
        printer_architecture(),
        GANSecConfig(cgan=CGANConfig(iterations=1200), seed=SEED),
    )
    print("training one CGAN per flow pair (Algorithm 2 x 5) ...")
    reports = pipeline.run(data)

    rows = []
    for (emission, _gcode), report in sorted(
        reports.items(), key=lambda kv: -kv[1].leakage.accuracy
    ):
        rows.append(
            [
                emission,
                EMISSION_LABELS[emission],
                report.leakage.accuracy,
                report.leakage.leakage_ratio,
                report.verdict().split(" ")[0],
            ]
        )
    print()
    print(
        format_table(
            rows,
            ["flow", "sensor", "attack accuracy", "x over chance", "verdict"],
            title="per-emission leakage ranking (Pr(emission | G-code))",
        )
    )
    print()
    print(pipeline.summary())
    print(
        "\nReading: every monitored emission leaks the G-code; the ranking"
        "\ntells the designer which physical location leaks worst and where"
        "\nmasking or shielding buys the most."
    )


if __name__ == "__main__":
    main()
