"""Cross-subsystem CPPS analysis (paper Figure 1 / Section II).

GAN-Sec is not limited to one machine: a CPPS is "multiple sub-systems
interacting with each other", and "information leakage or attack
detection needs to be performed across multiple sub-systems".

This example builds a three-subsystem smart factory — a 3D printer, a
CNC mill, and a conveyor that links them — runs Algorithm 1 over the
full architecture, and shows how the flow-pair pruning isolates the
cross-domain, cross-subsystem pairs worth modeling.

Run:  python examples/cross_subsystem_analysis.py
"""

from repro.flows.base import EnergyForm
from repro.graph import (
    CPPSArchitecture,
    SubSystem,
    adjacency_listing,
    cyber,
    generate,
    physical,
)


def factory_architecture() -> CPPSArchitecture:
    """A small smart factory: printer + CNC mill + conveyor + MES."""
    arch = CPPSArchitecture("smart-factory")

    mes = SubSystem("mes", description="Manufacturing execution system")
    mes.add(cyber("MES", "Production scheduler"))
    arch.add_subsystem(mes)

    printer = SubSystem("printer")
    printer.add(cyber("PRT-C", "Printer controller"))
    printer.add(physical("PRT-M", "Printer motion stage"))
    arch.add_subsystem(printer)

    mill = SubSystem("mill")
    mill.add(cyber("CNC-C", "CNC controller"))
    mill.add(physical("CNC-S", "CNC spindle"))
    arch.add_subsystem(mill)

    conveyor = SubSystem("conveyor")
    conveyor.add(cyber("CNV-C", "Conveyor PLC"))
    conveyor.add(physical("CNV-B", "Conveyor belt"))
    arch.add_subsystem(conveyor)

    env = SubSystem("environment")
    env.add(physical("ENV", "Shared shop floor", external=True))
    arch.add_subsystem(env)

    # Cyber scheduling fabric.
    arch.add_signal_flow("S1", "MES", "PRT-C", description="print jobs")
    arch.add_signal_flow("S2", "MES", "CNC-C", description="milling jobs")
    arch.add_signal_flow("S3", "MES", "CNV-C", description="transfer orders")
    arch.add_signal_flow("S4", "PRT-C", "CNV-C", description="part-ready events")
    arch.add_signal_flow("S5", "CNV-C", "CNC-C", description="part-arrival events")

    # Intra-subsystem actuation.
    arch.add_energy_flow("E1", "PRT-C", "PRT-M", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("E2", "CNC-C", "CNC-S", form=EnergyForm.ELECTRICAL)
    arch.add_energy_flow("E3", "CNV-C", "CNV-B", form=EnergyForm.ELECTRICAL)

    # Material flow between sub-systems (commodity flow).
    arch.add_energy_flow("E4", "PRT-M", "CNV-B", form=EnergyForm.MATERIAL)
    arch.add_energy_flow("E5", "CNV-B", "CNC-S", form=EnergyForm.MATERIAL)

    # Unintentional emissions into the shared shop floor.
    for name, src in (("E6", "PRT-M"), ("E7", "CNC-S"), ("E8", "CNV-B")):
        arch.add_energy_flow(
            name, src, "ENV", form=EnergyForm.ACOUSTIC, intentional=False
        )
    return arch


def main():
    arch = factory_architecture()
    print(f"architecture: {arch}")
    print(f"cross-subsystem flows: "
          f"{[f.name for f in arch.cross_subsystem_flows()]}")

    # Suppose we can only record the MES job stream and the shop-floor
    # microphones — a realistic monitoring deployment.
    observed = {"S1", "S2", "S3", "E6", "E7", "E8"}
    result = generate(arch, observed)
    print()
    print(result.summary())
    print()
    print("-- adjacency --")
    print(adjacency_listing(result.graph))

    print()
    print("-- trainable cross-domain pairs (CGAN candidates) --")
    for fp in result.cross_domain_pairs():
        src_sub = arch.subsystem_of(fp.first.source).name
        dst_sub = arch.subsystem_of(fp.second.source).name
        scope = "cross-subsystem" if src_sub != dst_sub else "within-subsystem"
        print(f"  {fp}   [{scope}]")

    print()
    print(
        "Each pair above is a candidate CGAN Pr(F_i | F_j): e.g. the shop\n"
        "microphone near the mill (E7) conditioned on the MES job stream\n"
        "(S2) quantifies whether the factory's schedule leaks through the\n"
        "shared acoustic environment - a cross-subsystem side channel no\n"
        "per-machine analysis would see."
    )


if __name__ == "__main__":
    main()
