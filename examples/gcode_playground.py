"""Walkthrough of the manufacturing substrate: G-code → motion → sound.

Shows each stage of the simulated testbed the reproduction substitutes
for the paper's physical 3D printer: parsing, kinematic planning,
stepper step frequencies, acoustic synthesis, and CWT featureization.

Run:  python examples/gcode_playground.py
"""

import numpy as np

from repro.dsp import FrequencyFeatureExtractor
from repro.manufacturing import (
    GCodeProgram,
    Printer3D,
    rectangle_program,
)
from repro.utils.ascii_plot import ascii_line_plot

PROGRAM_TEXT = """
G21            ; millimeters
G90            ; absolute positioning
G28            ; home
G1 F1200 X20   ; X motor only: 20 mm/s -> 1600 Hz step tone
G1 F1200 Y15   ; Y motor only
G1 F120  Z2    ; Z motor: lead screw, 2 mm/s -> 800 Hz + 2.6 kHz resonance
G4 P300        ; dwell (near-silence)
G1 F1200 X0 Y0 ; diagonal: X and Y together
"""


def main():
    program = GCodeProgram.from_text(PROGRAM_TEXT, name="demo")
    print(f"parsed {len(program)} commands; canonical form:")
    print(program.to_text())

    printer = Printer3D(sample_rate=12000.0, seed=0)
    print("\n-- kinematic plan --")
    segments = printer.plan(program)
    for seg in segments:
        freqs = {a: f"{f:.0f}Hz" for a, f in seg.step_frequencies.items()}
        print(
            f"  seg#{seg.index}: axes={sorted(seg.active_axes) or 'dwell'} "
            f"duration={seg.duration:.2f}s step-freqs={freqs or '-'}"
        )

    print("\n-- acoustic rendering --")
    run = printer.run(program, seed=1)
    print(f"  microphone trace: {run.audio}")
    for i, seg in enumerate(run.segments):
        rms = run.segment_audio(i).rms()
        print(f"  seg#{seg.index} rms={rms:.3f}")

    print("\n-- CWT features of the X move vs the Z move --")
    extractor = FrequencyFeatureExtractor(printer.sample_rate, n_bins=60)
    x_seg = run.segment_audio(0).samples
    z_seg = run.segment_audio(2).samples
    fx = extractor.raw_features(x_seg)
    fz = extractor.raw_features(z_seg)
    print(
        ascii_line_plot(
            {"X move": fx / fx.max(), "Z move": fz / fz.max()},
            title="normalized spectra over 60 log-spaced bins (50-5000 Hz)",
            xlabel="bin (50 Hz ... 5000 Hz, log-spaced)",
            height=12,
        )
    )
    print(
        f"\nX spectrum peaks at {extractor.frequencies[np.argmax(fx)]:.0f} Hz, "
        f"Z at {extractor.frequencies[np.argmax(fz)]:.0f} Hz - these"
        "\nmotor-specific signatures are exactly what the CGAN learns to"
        "\nassociate with the G-code conditions."
    )

    print("\n-- a realistic part: rectangle perimeter --")
    rect = rectangle_program(30, 20, n_loops=2)
    rect_run = printer.run(rect, seed=2)
    print(f"  {rect_run}")


if __name__ == "__main__":
    main()
