"""Integrity & availability attack detection from the same side channel.

Scenario (paper Section IV-D, integrity/availability): the defender
flips the side channel around.  The CGAN that modeled Pr(emission |
G-code) becomes an attack detector: if the sound the printer makes is
unlikely under the condition the controller *believes* it is executing,
something tampered with the physical process.

Three attacks are evaluated:
  * axis-swap (integrity)  - the executed motion drives a different
    motor than the logged G-code (Stuxnet-style geometry sabotage);
  * feed-rate scaling (integrity) - same geometry, tampered speeds;
  * motor stall (availability) - the claimed motor never runs.

Run:  python examples/attack_detection.py
"""

import numpy as np

from repro.gan import ConditionalGAN
from repro.manufacturing import Printer3D, record_case_study_dataset
from repro.security import (
    EmissionAttackDetector,
    axis_swap_attack,
    feature_leakage_profile,
    feed_rate_attack,
    motor_stall_attack,
)

SEED = 11


def main():
    print("[defender] recording clean traces & training the CGAN ...")
    dataset, extractor, encoder, _runs = record_case_study_dataset(
        n_moves_per_axis=30, seed=SEED
    )
    train, clean_test = dataset.split(0.3, seed=SEED)
    cgan = ConditionalGAN(dataset.feature_dim, dataset.condition_dim, seed=SEED)
    cgan.train(train, iterations=2000, batch_size=32)

    # Score on the 20 most condition-informative frequency bins: the
    # detector watches where the side channel actually lives.
    top_features = np.argsort(feature_leakage_profile(train))[::-1][:20]
    detector = EmissionAttackDetector(
        cgan,
        dataset.unique_conditions(),
        h=0.2,
        g_size=250,
        feature_indices=top_features,
        seed=SEED,
    ).fit()
    threshold = detector.calibrate(train, false_positive_rate=0.05)
    print(f"[defender] detector calibrated: threshold={threshold:.2f} "
          "(5% clean-trace false-positive budget)")

    printer = Printer3D(sample_rate=12000.0, seed=500)

    print("\n--- integrity attack: axis swap ---")
    feats, claims = axis_swap_attack(clean_test, seed=SEED)
    report = detector.evaluate(clean_test, feats, claims)
    print(report.summary())

    print("\n--- integrity attack: feed rate x4 ---")
    feats, claims = feed_rate_attack(
        printer, extractor, encoder, "X", scale=4.0, n_moves=15, seed=SEED
    )
    report = detector.evaluate(clean_test, feats, claims)
    print(report.summary())
    feed_auc = report.auc

    print("\n--- availability attack: Z motor stalled ---")
    feats, claims = motor_stall_attack(
        printer, extractor, encoder, "Z", n_moves=15, seed=SEED
    )
    report = detector.evaluate(clean_test, feats, claims)
    print(report.summary())

    print(
        "\nConclusion: this is exactly the design-time estimate GAN-Sec"
        "\npromises. The designer learns, before deploying anything, that"
        "\nthis side-channel detector (per-feature marginal likelihoods)"
        "\ncatches availability attacks perfectly and axis-swap integrity"
        "\nattacks usefully - but feed-rate tampering"
        f" (AUC {feed_auc:.2f}) hides"
        "\ninside the machine's normal operating envelope and needs a"
        "\nricher conditioning (e.g. feed rate in the condition vector)."
    )


if __name__ == "__main__":
    main()
