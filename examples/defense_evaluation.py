"""Closing the loop: scoring side-channel defenses at design time.

After GAN-Sec reveals that the printer's sound leaks its G-code
(see side_channel_attack.py), the designer wants a fix.  This example
evaluates two defenses — an active masking emitter and controller-side
feed-rate dithering — by re-running the same CGAN-based attack against
the defended machine and reporting the leakage drop.

Run:  python examples/defense_evaluation.py
"""

from repro.security import (
    AcousticMasking,
    CombinedDefense,
    FeedRateDithering,
    evaluate_defense,
)

SEED = 13


def main():
    defenses = [
        AcousticMasking(level=1.0),
        AcousticMasking(level=4.0),
        FeedRateDithering(0.4),
        CombinedDefense([FeedRateDithering(0.4), AcousticMasking(level=4.0)]),
    ]
    print("evaluating defenses (each trains a fresh attacker CGAN) ...\n")
    reports = []
    for defense in defenses:
        report = evaluate_defense(
            defense, n_moves_per_axis=25, iterations=1200, seed=SEED
        )
        reports.append(report)
        print(" ", report.summary())

    baseline = reports[0].baseline_accuracy
    best = min(reports, key=lambda r: r.defended_accuracy)
    print(
        f"\nBaseline attack accuracy {baseline:.1%} (chance 33.3%)."
        f"\nBest defense: {best.defense_name}"
        f"\n  -> residual attack accuracy {best.defended_accuracy:.1%}, "
        f"MI reduced by {best.mi_reduction_bits:.2f} bits/feature."
        "\n\nThe designer can iterate defenses entirely at design time,"
        "\nusing the CGAN attacker as the metric - no physical prototype"
        "\nor real attack needed."
    )


if __name__ == "__main__":
    main()
