#!/usr/bin/env bash
# Resume smoke test: run a tiny experiment, SIGTERM it mid-training,
# resume it, and require the final summary.json to be byte-identical to
# an uninterrupted reference run.  CI uploads both run manifests.
#
# Usage: scripts/resume_smoke.sh [workdir]   (default: ./resume-smoke)
set -euo pipefail

WORKDIR="${1:-resume-smoke}"
REF="$WORKDIR/run-ref"
INT="$WORKDIR/run-int"
# Enough iterations that the kill below always lands mid-training.
FLAGS=(--moves 6 --iterations 3000 --seed 4 --checkpoint-every 50)
CKPT="$INT/checkpoints/F18__F1/checkpoint.json"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

echo "== reference run (uninterrupted) =="
python -m repro.cli experiment --out "$REF" "${FLAGS[@]}"

echo "== interrupted run: SIGTERM after the first checkpoint =="
python -m repro.cli experiment --out "$INT" "${FLAGS[@]}" &
PID=$!
for _ in $(seq 1 240); do
    [ -f "$CKPT" ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.5
done
kill -TERM "$PID" 2>/dev/null || true
wait "$PID" || true

if [ -f "$INT/summary.json" ]; then
    echo "ERROR: run finished before it could be interrupted" >&2
    exit 1
fi
if [ ! -f "$CKPT" ]; then
    echo "ERROR: no training checkpoint was written before the kill" >&2
    exit 1
fi
echo "interrupted with checkpoint at: $(python -c "
import json, sys
print(json.load(open('$CKPT'))['iteration'])")/3000 iterations"

echo "== resumed run =="
python -m repro.cli experiment --out "$INT" "${FLAGS[@]}" --resume --progress

echo "== comparing artifacts =="
for artifact in summary.json history.csv report.txt analysis.json; do
    cmp "$REF/$artifact" "$INT/$artifact"
    echo "identical: $artifact"
done
echo "resume smoke test passed"
